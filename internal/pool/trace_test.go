package pool

import (
	"context"
	"sync/atomic"
	"testing"

	"xmlac/internal/obs"
)

// sinkFunc adapts a function to obs.Sink.
type sinkFunc func(*obs.Span)

func (f sinkFunc) Emit(root *obs.Span) { f(root) }

// TestForEachCtxTracePropagation: the context handed to each fan-out
// task carries the caller's span across the goroutine boundary, so child
// spans started inside tasks land in the caller's tree.
func TestForEachCtxTracePropagation(t *testing.T) {
	var root *obs.Span
	tr := obs.NewTracer(sinkFunc(func(r *obs.Span) { root = r }))
	sp := tr.Start("fan-out")
	ctx := obs.ContextWithSpan(context.Background(), sp)
	p := New(4)
	err := p.ForEach(8, func(i int) error { return nil }) // plain path still works
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ForEachCtx(ctx, 8, func(ctx context.Context, i int) error {
		got := obs.FromContext(ctx)
		if got != sp {
			t.Errorf("task %d: context carries %v, want the fan-out span", i, got)
		}
		task, _ := obs.StartCtx(ctx, "task")
		task.Finish()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sp.Finish()
	if root == nil {
		t.Fatal("root never emitted")
	}
	if got := len(root.Children()); got != 8 {
		t.Fatalf("root has %d children, want 8", got)
	}
	for _, c := range root.Children() {
		if c.TraceID() != root.TraceID() {
			t.Fatalf("child trace %s != root trace %s", c.TraceID(), root.TraceID())
		}
	}
}

// TestForEachCtxConcurrentSpanHammer hammers concurrent child-span
// creation under pool fan-out — the -race check that one shared parent
// span tolerates children being attached from every worker at once.
func TestForEachCtxConcurrentSpanHammer(t *testing.T) {
	tr := obs.NewTracer(sinkFunc(func(*obs.Span) {}))
	sp := tr.Start("hammer")
	ctx := obs.ContextWithSpan(context.Background(), sp)
	p := New(8)
	var started atomic.Int64
	const tasks, spansPerTask = 64, 25
	if err := p.ForEachCtx(ctx, tasks, func(ctx context.Context, i int) error {
		for j := 0; j < spansPerTask; j++ {
			child, cctx := obs.StartCtx(ctx, "work")
			// A second level, to race sibling attachment under the
			// freshly created child too.
			leaf, _ := obs.StartCtx(cctx, "leaf")
			leaf.Finish()
			child.SetAttr("task", i)
			child.Finish()
			started.Add(1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sp.Finish()
	if started.Load() != tasks*spansPerTask {
		t.Fatalf("started %d spans, want %d", started.Load(), tasks*spansPerTask)
	}
	if got := len(sp.Children()); got != tasks*spansPerTask {
		t.Fatalf("root has %d children, want %d", got, tasks*spansPerTask)
	}
	for _, c := range sp.Children() {
		if c.TraceID() != sp.TraceID() {
			t.Fatal("child escaped the root's trace")
		}
	}
}
