package shred

import (
	"reflect"
	"strings"
	"testing"

	"xmlac/internal/dtd"
	"xmlac/internal/sqldb"
	"xmlac/internal/xmltree"
	"xmlac/internal/xpath"
)

func TestOwnerIndexAscendingCoalesces(t *testing.T) {
	ix := &OwnerIndex{}
	// Shredding order: a run of "a" ids, one "b" id, more "a" ids.
	for id := int64(1); id <= 5; id++ {
		ix.Record(id, "a")
	}
	ix.Record(6, "b")
	ix.Record(7, "a")
	ix.Record(8, "a")
	if got := ix.Len(); got != 3 {
		t.Errorf("Len() = %d, want 3 ranges", got)
	}
	for id, want := range map[int64]string{1: "a", 5: "a", 6: "b", 7: "a", 8: "a"} {
		if got, ok := ix.Lookup(id); !ok || got != want {
			t.Errorf("Lookup(%d) = %q, %v; want %q", id, got, ok, want)
		}
	}
	if _, ok := ix.Lookup(9); ok {
		t.Error("Lookup(9) should miss")
	}
	if _, ok := ix.Lookup(0); ok {
		t.Error("Lookup(0) should miss")
	}
}

func TestOwnerIndexForgetSplitsAndRemoves(t *testing.T) {
	ix := &OwnerIndex{}
	for id := int64(1); id <= 9; id++ {
		ix.Record(id, "a")
	}
	ix.Forget(5) // interior: split
	if _, ok := ix.Lookup(5); ok {
		t.Error("Lookup(5) after Forget should miss")
	}
	for _, id := range []int64{1, 4, 6, 9} {
		if got, ok := ix.Lookup(id); !ok || got != "a" {
			t.Errorf("Lookup(%d) = %q, %v after split", id, got, ok)
		}
	}
	if got := ix.Len(); got != 2 {
		t.Errorf("Len() after split = %d, want 2", got)
	}
	ix.Forget(1) // range head
	ix.Forget(4) // range tail
	if _, ok := ix.Lookup(1); ok {
		t.Error("Lookup(1) should miss")
	}
	if _, ok := ix.Lookup(4); ok {
		t.Error("Lookup(4) should miss")
	}
	for _, id := range []int64{2, 3} {
		if _, ok := ix.Lookup(id); !ok {
			t.Errorf("Lookup(%d) should still hit", id)
		}
	}
	ix.Forget(2)
	ix.Forget(3) // empties the first range entirely
	if got, ok := ix.Lookup(7); !ok || got != "a" {
		t.Errorf("Lookup(7) = %q, %v", got, ok)
	}
	ix.Forget(100) // unknown id: no-op
}

func TestOwnerIndexRerecordOverwrites(t *testing.T) {
	ix := &OwnerIndex{}
	for id := int64(1); id <= 4; id++ {
		ix.Record(id, "a")
	}
	// A mapping reused across documents re-records ids; the newest table
	// must win.
	ix.Record(2, "b")
	if got, _ := ix.Lookup(2); got != "b" {
		t.Errorf("Lookup(2) = %q, want b (overwrite)", got)
	}
	for _, id := range []int64{1, 3, 4} {
		if got, _ := ix.Lookup(id); got != "a" {
			t.Errorf("Lookup(%d) = %q, want a", id, got)
		}
	}
	// Re-recording with the same table coalesces back into one range.
	ix.Record(2, "a")
	if got := ix.Len(); got != 1 {
		t.Errorf("Len() after re-coalesce = %d, want 1", got)
	}
}

func TestMappingRecordsOwnersOnShred(t *testing.T) {
	schema := dtd.MustParse(`
<!ELEMENT a (b*)>
<!ELEMENT b (c*)>
<!ELEMENT c (#PCDATA)>
`)
	m, err := BuildMapping(schema)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseString(`<a><b><c>x</c><c>y</c></b><b><c>z</c></b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	db := sqldb.Open(sqldb.EngineRow)
	if err := NewShredder(m).IntoDB(db, doc); err != nil {
		t.Fatal(err)
	}
	doc.Walk(func(n *xmltree.Node) bool {
		if !n.IsElement() {
			return true
		}
		want := m.TableFor(n.Label).Table
		if got := m.OwnerTable(n.ID); got != want {
			t.Errorf("OwnerTable(%d %s) = %q, want %q", n.ID, n.Label, got, want)
		}
		return true
	})
	var ids []int64
	doc.Walk(func(n *xmltree.Node) bool {
		if n.IsElement() && n.Label == "c" {
			ids = append(ids, n.ID)
		}
		return true
	})
	owned, unknown := m.GroupByOwner(ids)
	if len(unknown) != 0 {
		t.Errorf("unknown ids = %v", unknown)
	}
	if !reflect.DeepEqual(owned, map[string][]int64{"c": ids}) {
		t.Errorf("GroupByOwner = %v", owned)
	}
}

func TestMappingWithoutOwnerIndexDegrades(t *testing.T) {
	m := &Mapping{} // hand-constructed: no owner index
	m.RecordOwner(1, "a")
	m.ForgetOwner(1)
	if got := m.OwnerTable(1); got != "" {
		t.Errorf("OwnerTable = %q, want empty", got)
	}
	owned, unknown := m.GroupByOwner([]int64{1, 2})
	if owned != nil || !reflect.DeepEqual(unknown, []int64{1, 2}) {
		t.Errorf("GroupByOwner = %v, %v; want all unknown", owned, unknown)
	}
	if m.OwnerRanges() != 0 {
		t.Errorf("OwnerRanges = %d", m.OwnerRanges())
	}
}

func TestTranslateAccessibleAddsSignPredicatePerBranch(t *testing.T) {
	schema := dtd.MustParse(`
<!ELEMENT a (b*, c*)>
<!ELEMENT b (d*)>
<!ELEMENT c (d*)>
<!ELEMENT d (#PCDATA)>
`)
	m, err := BuildMapping(schema)
	if err != nil {
		t.Fatal(err)
	}
	p := xpath.MustParse("//d")
	plain, err := Translate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	signed, err := TranslateAccessible(m, p)
	if err != nil {
		t.Fatal(err)
	}
	branches := strings.Count(plain, "SELECT")
	if branches != 2 {
		t.Fatalf("expected 2 UNION branches, got %d:\n%s", branches, plain)
	}
	if got := strings.Count(signed, ".s = '+'"); got != branches {
		t.Errorf("signed query has %d sign predicates, want one per branch (%d):\n%s", got, branches, signed)
	}
	// The signed query is the plain one plus the predicates: stripping them
	// must give back the plain text.
	stripped := strings.ReplaceAll(signed, " AND t2.s = '+'", "")
	stripped = strings.ReplaceAll(stripped, " AND t3.s = '+'", "")
	if stripped != plain {
		t.Errorf("signed query diverges beyond the sign predicates:\nplain:  %s\nsigned: %s", plain, signed)
	}
}

func TestIndexDDLCreatesUsableIndexes(t *testing.T) {
	schema := dtd.MustParse(`
<!ELEMENT a (b*)>
<!ELEMENT b (#PCDATA)>
`)
	m, err := BuildMapping(schema)
	if err != nil {
		t.Fatal(err)
	}
	ddl := m.IndexDDL()
	for _, want := range []string{
		"CREATE INDEX a_pid_idx ON a (pid);",
		"CREATE INDEX a_s_idx ON a (s);",
		"CREATE INDEX b_pid_idx ON b (pid);",
		"CREATE INDEX b_s_idx ON b (s);",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("IndexDDL missing %q:\n%s", want, ddl)
		}
	}
	// DDL() must stay index-free: the shredded SQL scripts keep the paper's
	// shape (Table 5 sizes, Figure 9 loading).
	if strings.Contains(m.DDL(), "CREATE INDEX") {
		t.Error("DDL() must not contain CREATE INDEX")
	}
	db := sqldb.Open(sqldb.EngineColumn)
	doc, err := xmltree.ParseString(`<a><b>x</b><b>y</b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewShredder(m).IntoDB(db, doc); err != nil {
		t.Fatal(err)
	}
	// The sign index must drive s = '+' probes.
	res, err := db.Exec("EXPLAIN SELECT id FROM b WHERE s = '+'")
	if err != nil {
		t.Fatal(err)
	}
	var plan strings.Builder
	for _, row := range res.Rows {
		plan.WriteString(row[0].S)
		plan.WriteString("\n")
	}
	if !strings.Contains(plan.String(), "secondary index on s") {
		t.Errorf("sign probe does not use the s index:\n%s", plan.String())
	}
}
