package shred

import (
	"sort"
	"sync"
)

// Owner routing. Universal identifiers are unique across the whole shredded
// database, so every id belongs to exactly one table — but the id alone does
// not say which. The reference request path therefore probes every table of
// the mapping with sign-check IN batches. The OwnerIndex removes that
// cross-product: it records, as a compact range map, which table owns each
// id. Documents are shredded in document order with monotonically increasing
// identifiers, so consecutive same-table nodes collapse into one range and
// the index stays proportional to the document's table-switching frequency,
// not its size.

// ownerRange says ids in [start, end) live in table.
type ownerRange struct {
	start, end int64
	table      string
}

// OwnerIndex maps universal identifiers to their owning table. The zero
// value is ready to use. All methods are safe for concurrent use.
type OwnerIndex struct {
	mu     sync.RWMutex
	ranges []ownerRange // sorted by start, non-overlapping
}

// Record notes that id lives in table. Ascending insertions (the shredding
// walk order) extend the tail range in O(1); out-of-order or re-recorded ids
// fall back to a general insert that keeps the ranges sorted and coalesced.
func (ix *OwnerIndex) Record(id int64, table string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := len(ix.ranges)
	if n == 0 || id >= ix.ranges[n-1].end {
		if n > 0 && ix.ranges[n-1].end == id && ix.ranges[n-1].table == table {
			ix.ranges[n-1].end = id + 1
			return
		}
		ix.ranges = append(ix.ranges, ownerRange{start: id, end: id + 1, table: table})
		return
	}
	ix.forgetLocked(id)
	i := sort.Search(len(ix.ranges), func(k int) bool { return ix.ranges[k].end > id })
	// Coalesce with an adjacent same-table neighbor where possible.
	if i < len(ix.ranges) && ix.ranges[i].start == id+1 && ix.ranges[i].table == table {
		ix.ranges[i].start = id
		if i > 0 && ix.ranges[i-1].end == id && ix.ranges[i-1].table == table {
			ix.ranges[i-1].end = ix.ranges[i].end
			ix.ranges = append(ix.ranges[:i], ix.ranges[i+1:]...)
		}
		return
	}
	if i > 0 && ix.ranges[i-1].end == id && ix.ranges[i-1].table == table {
		ix.ranges[i-1].end = id + 1
		return
	}
	ix.ranges = append(ix.ranges, ownerRange{})
	copy(ix.ranges[i+1:], ix.ranges[i:])
	ix.ranges[i] = ownerRange{start: id, end: id + 1, table: table}
}

// Lookup returns the owning table of id, or "" when the id was never
// recorded (e.g. a database populated outside the shredder).
func (ix *OwnerIndex) Lookup(id int64) (string, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if r, ok := ix.find(id); ok {
		return r.table, true
	}
	return "", false
}

// find locates the range containing id. Caller holds at least the read lock.
func (ix *OwnerIndex) find(id int64) (ownerRange, bool) {
	i := sort.Search(len(ix.ranges), func(k int) bool { return ix.ranges[k].end > id })
	if i < len(ix.ranges) && ix.ranges[i].start <= id {
		return ix.ranges[i], true
	}
	return ownerRange{}, false
}

// Forget removes one id from the index (a deleted tuple). Interior removals
// split their range in two.
func (ix *OwnerIndex) Forget(id int64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.forgetLocked(id)
}

func (ix *OwnerIndex) forgetLocked(id int64) {
	i := sort.Search(len(ix.ranges), func(k int) bool { return ix.ranges[k].end > id })
	if i >= len(ix.ranges) || ix.ranges[i].start > id {
		return
	}
	r := &ix.ranges[i]
	switch {
	case r.start == id && r.end == id+1:
		ix.ranges = append(ix.ranges[:i], ix.ranges[i+1:]...)
	case r.start == id:
		r.start = id + 1
	case r.end == id+1:
		r.end = id
	default:
		tail := ownerRange{start: id + 1, end: r.end, table: r.table}
		r.end = id
		ix.ranges = append(ix.ranges, ownerRange{})
		copy(ix.ranges[i+2:], ix.ranges[i+1:])
		ix.ranges[i+1] = tail
	}
}

// Len returns the number of stored ranges — the routing structure's size.
func (ix *OwnerIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.ranges)
}

// RecordOwner notes that the tuple with the given universal identifier was
// shredded into table. The shredder calls this for every inserted node.
func (m *Mapping) RecordOwner(id int64, table string) {
	if m.owners == nil {
		return
	}
	m.owners.Record(id, table)
}

// OwnerTable returns the table owning the id, or "" when unknown.
func (m *Mapping) OwnerTable(id int64) string {
	if m.owners == nil {
		return ""
	}
	t, _ := m.owners.Lookup(id)
	return t
}

// ForgetOwner drops deleted ids from the routing index.
func (m *Mapping) ForgetOwner(ids ...int64) {
	if m.owners == nil {
		return
	}
	for _, id := range ids {
		m.owners.Forget(id)
	}
}

// GroupByOwner splits ids by their owning table. Ids the index does not know
// (hand-loaded databases, mappings built without shredding) are returned in
// unknown; the caller falls back to probing every table for those.
func (m *Mapping) GroupByOwner(ids []int64) (owned map[string][]int64, unknown []int64) {
	if m.owners == nil {
		return nil, ids
	}
	owned = map[string][]int64{}
	for _, id := range ids {
		if t, ok := m.owners.Lookup(id); ok {
			owned[t] = append(owned[t], id)
		} else {
			unknown = append(unknown, id)
		}
	}
	return owned, unknown
}

// OwnerRanges returns the routing index's range count (0 when the mapping
// has no owner index) — exposed for tests and diagnostics.
func (m *Mapping) OwnerRanges() int {
	if m.owners == nil {
		return 0
	}
	return m.owners.Len()
}
