package shred

import (
	"fmt"
	"io"
	"slices"
	"strings"

	"xmlac/internal/sqldb"
	"xmlac/internal/xmltree"
)

// Shredder turns XML documents into their relational representation under a
// mapping.
type Shredder struct {
	Mapping *Mapping
	// DefaultSign initializes the s column; the paper initializes tuples to
	// the policy's default semantics. Zero value means '-'.
	DefaultSign xmltree.Sign
}

// NewShredder builds a shredder with deny ('-') default sign.
func NewShredder(m *Mapping) *Shredder {
	return &Shredder{Mapping: m, DefaultSign: xmltree.SignMinus}
}

func (s *Shredder) signText(n *xmltree.Node) string {
	sign := n.Sign
	if sign == xmltree.SignNone {
		sign = s.DefaultSign
		if sign == xmltree.SignNone {
			sign = xmltree.SignMinus
		}
	}
	return sign.String()
}

// tupleOf builds the column values of one element node, in the mapping's
// column order (id, pid, attrs..., [v,] s).
func (s *Shredder) tupleOf(n *xmltree.Node, ti *TableInfo) []sqldb.Value {
	vals := make([]sqldb.Value, 0, 4+len(ti.Attrs))
	vals = append(vals, sqldb.NewInt(n.ID))
	if n.Parent() == nil {
		vals = append(vals, sqldb.Null)
	} else {
		vals = append(vals, sqldb.NewInt(n.Parent().ID))
	}
	for _, a := range ti.Attrs {
		if v, ok := n.Attrs[a]; ok {
			vals = append(vals, sqldb.NewText(v))
		} else {
			vals = append(vals, sqldb.Null)
		}
	}
	if ti.HasValue {
		vals = append(vals, sqldb.NewText(directText(n)))
	}
	vals = append(vals, sqldb.NewText(s.signText(n)))
	return vals
}

// directText concatenates the node's immediate text children, which is what
// the v column stores (ShreX keeps each element's own character data; nested
// elements have their own tuples).
func directText(n *xmltree.Node) string {
	var b strings.Builder
	for _, c := range n.Children() {
		if c.IsText() {
			b.WriteString(c.Value)
		}
	}
	return b.String()
}

// IntoDB creates the mapping's tables in db and loads the document. This is
// the fast path used by tests and the annotation engine; the loading
// experiment uses ToSQL + ExecScript to model the paper's INSERT stream.
func (s *Shredder) IntoDB(db *sqldb.Database, doc *xmltree.Document) error {
	if _, err := db.ExecScript(s.Mapping.DDL()); err != nil {
		return fmt.Errorf("shred: creating tables: %w", err)
	}
	if _, err := db.ExecScript(s.Mapping.IndexDDL()); err != nil {
		return fmt.Errorf("shred: creating indexes: %w", err)
	}
	return s.LoadInto(db, doc)
}

// LoadInto shreds the document into an already-created schema.
func (s *Shredder) LoadInto(db *sqldb.Database, doc *xmltree.Document) error {
	var err error
	doc.Walk(func(n *xmltree.Node) bool {
		if err != nil || !n.IsElement() {
			return err == nil
		}
		ti := s.Mapping.TableFor(n.Label)
		if ti == nil {
			err = fmt.Errorf("shred: element type %q not in mapping", n.Label)
			return false
		}
		st := &sqldb.InsertStmt{Table: ti.Table, Rows: [][]sqldb.Value{s.tupleOf(n, ti)}}
		if _, e := db.ExecStmt(st); e != nil {
			err = fmt.Errorf("shred: node %d: %w", n.ID, e)
			return false
		}
		s.Mapping.RecordOwner(n.ID, ti.Table)
		return true
	})
	return err
}

// InsertSubtree mirrors one subtree of an already-loaded document into the
// database — the relational half of an XML insert update. The subtree's
// nodes must carry their final universal identifiers (i.e. already be
// grafted into the document tree).
func (s *Shredder) InsertSubtree(db *sqldb.Database, root *xmltree.Node) error {
	var err error
	root.Walk(func(n *xmltree.Node) bool {
		if err != nil || !n.IsElement() {
			return err == nil
		}
		ti := s.Mapping.TableFor(n.Label)
		if ti == nil {
			err = fmt.Errorf("shred: element type %q not in mapping", n.Label)
			return false
		}
		st := &sqldb.InsertStmt{Table: ti.Table, Rows: [][]sqldb.Value{s.tupleOf(n, ti)}}
		if _, e := db.ExecStmt(st); e != nil {
			err = fmt.Errorf("shred: node %d: %w", n.ID, e)
			return false
		}
		s.Mapping.RecordOwner(n.ID, ti.Table)
		return true
	})
	return err
}

// ToSQL writes the document's relational representation as SQL text: the
// mapping's DDL followed by one INSERT statement per element node — the
// "text files containing SQL INSERT statements" of the evaluation setup
// (Table 5's SQL sizes, Figure 9's loading workload).
func (s *Shredder) ToSQL(w io.Writer, doc *xmltree.Document) error {
	if _, err := io.WriteString(w, s.Mapping.DDL()); err != nil {
		return err
	}
	var err error
	doc.Walk(func(n *xmltree.Node) bool {
		if err != nil || !n.IsElement() {
			return err == nil
		}
		ti := s.Mapping.TableFor(n.Label)
		if ti == nil {
			err = fmt.Errorf("shred: element type %q not in mapping", n.Label)
			return false
		}
		var b strings.Builder
		b.WriteString("INSERT INTO ")
		b.WriteString(ti.Table)
		b.WriteString(" VALUES (")
		for i, v := range s.tupleOf(n, ti) {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(v.String())
		}
		b.WriteString(");\n")
		if _, e := io.WriteString(w, b.String()); e != nil {
			err = e
			return false
		}
		return true
	})
	return err
}

// Rebuild reconstructs an XML document from its relational representation —
// the inverse mapping, used by the requester to return subtrees and by the
// round-trip tests. Children are ordered by universal identifier, which is
// document order for shredded documents.
func Rebuild(db *sqldb.Database, m *Mapping) (*xmltree.Document, error) {
	var rows []rowInfo
	for _, ti := range m.Tables() {
		cols := "id, pid"
		for _, a := range ti.Attrs {
			cols += ", " + AttrColumn(a)
		}
		if ti.HasValue {
			cols += ", v"
		}
		cols += ", " + SignColumn
		res, err := db.Exec(fmt.Sprintf("SELECT %s FROM %s", cols, ti.Table))
		if err != nil {
			return nil, fmt.Errorf("shred: rebuild: %w", err)
		}
		for _, r := range res.Rows {
			ri := rowInfo{id: r[0].I, element: ti.Element}
			if !r[1].IsNull() {
				ri.pid, ri.hasPid = r[1].I, true
			}
			k := 2
			for _, a := range ti.Attrs {
				if !r[k].IsNull() {
					if ri.attrs == nil {
						ri.attrs = map[string]string{}
					}
					ri.attrs[a] = r[k].S
				}
				k++
			}
			if ti.HasValue {
				ri.value = r[k].S
				k++
			}
			sign, err := xmltree.ParseSign(r[k].S)
			if err != nil {
				return nil, fmt.Errorf("shred: rebuild: node %d: %w", ri.id, err)
			}
			ri.sign = sign
			rows = append(rows, ri)
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("shred: rebuild: database is empty")
	}
	// Build children lists; the root is the tuple with NULL pid.
	byID := map[int64]*rowInfo{}
	children := map[int64][]int64{}
	var rootID int64 = -1
	for i := range rows {
		ri := &rows[i]
		byID[ri.id] = ri
		if ri.hasPid {
			children[ri.pid] = append(children[ri.pid], ri.id)
		} else {
			if rootID >= 0 {
				return nil, fmt.Errorf("shred: rebuild: multiple roots (%d and %d)", rootID, ri.id)
			}
			rootID = ri.id
		}
	}
	if rootID < 0 {
		return nil, fmt.Errorf("shred: rebuild: no root tuple (NULL pid)")
	}
	for _, kids := range children {
		slices.Sort(kids)
	}
	doc := xmltree.NewDocument(byID[rootID].element)
	root := doc.Root()
	// First pass: create all element nodes and restore their stored
	// universal identifiers. Text children are added in a second pass so
	// their fresh ids land above the whole element id range and cannot
	// collide with stored ids.
	var withText []*xmltree.Node
	if err := applyRow(doc, root, byID[rootID]); err != nil {
		return nil, err
	}
	if byID[rootID].value != "" {
		withText = append(withText, root)
	}
	type workItem struct {
		storedID int64
		node     *xmltree.Node
	}
	work := []workItem{{rootID, root}}
	for len(work) > 0 {
		it := work[0]
		work = work[1:]
		for _, cid := range children[it.storedID] {
			ri := byID[cid]
			n := doc.AddElement(it.node, ri.element)
			if err := applyRow(doc, n, ri); err != nil {
				return nil, err
			}
			if ri.value != "" {
				withText = append(withText, n)
			}
			work = append(work, workItem{cid, n})
		}
	}
	for _, n := range withText {
		doc.AddText(n, byID[n.ID].value)
	}
	return doc, nil
}

// rowInfo is one decoded tuple during Rebuild.
type rowInfo struct {
	id, pid int64
	hasPid  bool
	element string
	value   string
	sign    xmltree.Sign
	attrs   map[string]string
}

// applyRow transfers one tuple's payload onto a freshly created element
// node, restoring the stored universal identifier.
func applyRow(doc *xmltree.Document, n *xmltree.Node, ri *rowInfo) error {
	n.Sign = ri.sign
	for k, v := range ri.attrs {
		if err := doc.SetAttr(n, k, v); err != nil {
			return fmt.Errorf("shred: rebuild: %w", err)
		}
	}
	if err := doc.SetNodeID(n, ri.id); err != nil {
		return fmt.Errorf("shred: rebuild: %w", err)
	}
	return nil
}
