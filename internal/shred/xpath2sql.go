package shred

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"xmlac/internal/xpath"
)

// Translate converts an absolute XPath expression of the paper's fragment
// into a SQL query over the shredded representation that returns the
// universal identifiers of the matched nodes — the translation ShreX
// performs in the paper's system (Section 5.2 shows the queries Q1, Q3, Q7
// it produces for the hospital rules).
//
// The translation resolves the expression against the schema: every
// descendant axis and every wildcard expands into the finitely many
// child-axis label chains the (non-recursive) schema admits. Each fully
// concrete resolution becomes one SELECT block whose FROM list has one
// alias per path node, joined on pid = parent id; qualifiers add further
// joins and value comparisons add conditions on the v column. Resolutions
// are combined with UNION (set semantics), which also gives existential
// qualifiers with several schema chains their disjunctive meaning. An
// expression the schema can never match translates to a query returning no
// rows.
func Translate(m *Mapping, p *xpath.Path) (string, error) {
	return translate(m, p, false)
}

// TranslateAccessible is Translate with the access check folded into the
// query (sign-predicate pushdown): every UNION branch additionally requires
// the matched node's sign column to be '+', so the query returns exactly the
// accessible subset of Translate's result in one pass inside the joins. The
// all-or-nothing decision then reduces to comparing the two cardinalities.
//
// The predicate is emitted on the output alias only, not on every step
// table: the paper's request semantics checks the signs of the *matched*
// nodes, and an accessible node may well be reached through an inaccessible
// ancestor or qualifier witness. Constraining intermediate aliases would
// deny requests the reference path grants.
func TranslateAccessible(m *Mapping, p *xpath.Path) (string, error) {
	return translate(m, p, true)
}

func translate(m *Mapping, p *xpath.Path, signed bool) (string, error) {
	if !p.Absolute {
		return "", fmt.Errorf("shred: Translate requires an absolute path, got %q", p)
	}
	if len(p.Steps) == 0 {
		return "", fmt.Errorf("shred: cannot translate the empty path")
	}
	tr := &translator{m: m}
	variants, err := tr.mainVariants(p)
	if err != nil {
		return "", err
	}
	if len(variants) == 0 {
		return tr.emptyQuery(), nil
	}
	seen := map[string]bool{}
	var blocks []string
	for _, v := range variants {
		v.block.out = v.alias
		if signed {
			// Every final variant owns its block (forks clone), so appending
			// the sign condition cannot leak into sibling branches.
			v.block.conds = append(v.block.conds, v.alias+"."+SignColumn+" = '+'")
		}
		s := v.block.sql()
		if !seen[s] {
			seen[s] = true
			blocks = append(blocks, s)
		}
	}
	sort.Strings(blocks)
	return strings.Join(blocks, " UNION "), nil
}

type translator struct {
	m *Mapping
}

// emptyQuery returns a syntactically valid query with no results (universal
// identifiers start at 1).
func (tr *translator) emptyQuery() string {
	t := tr.m.Tables()[0].Table
	return fmt.Sprintf("SELECT id FROM %s WHERE id = -1", t)
}

// selectBlock is one SELECT under construction.
type selectBlock struct {
	froms  []string // "table alias"
	conds  []string
	out    string // output alias
	nAlias int
}

func (b *selectBlock) clone() *selectBlock {
	return &selectBlock{
		froms:  append([]string(nil), b.froms...),
		conds:  append([]string(nil), b.conds...),
		out:    b.out,
		nAlias: b.nAlias,
	}
}

func (b *selectBlock) addAlias(table string) string {
	b.nAlias++
	a := fmt.Sprintf("t%d", b.nAlias)
	b.froms = append(b.froms, table+" "+a)
	return a
}

func (b *selectBlock) sql() string {
	s := "SELECT " + b.out + ".id FROM " + strings.Join(b.froms, ", ")
	if len(b.conds) > 0 {
		s += " WHERE " + strings.Join(b.conds, " AND ")
	}
	return s
}

// variant is a partially built SELECT: the block plus the schema label and
// alias of the cursor node (the node the next step moves from, or the node
// a qualifier constrains).
type variant struct {
	block *selectBlock
	label string
	alias string
}

// mainVariants resolves the main path into concrete variants, attaching
// qualifiers along the way.
func (tr *translator) mainVariants(p *xpath.Path) ([]variant, error) {
	root := tr.m.Schema.Root
	var cur []variant
	for i, s := range p.Steps {
		var next []variant
		if i == 0 {
			// The context is the virtual document node: its only child is
			// the schema root; its descendants are the root element and
			// everything below it.
			switch s.Axis {
			case xpath.Child:
				if s.Test == xpath.Wildcard || s.Test == root {
					b := &selectBlock{}
					a := b.addAlias(tr.m.ByElement[root].Table)
					next = append(next, variant{block: b, label: root, alias: a})
				}
			case xpath.Descendant:
				for _, l := range tr.labelsMatching(s.Test) {
					chains, err := tr.m.Schema.PathsFromRoot(l)
					if err != nil {
						return nil, err
					}
					for _, chain := range chains {
						b := &selectBlock{}
						v, err := tr.buildChainFrom(b, "", chain)
						if err != nil {
							return nil, err
						}
						next = append(next, v)
					}
				}
			}
		} else {
			for _, cv := range cur {
				vs, err := tr.stepFrom(cv, s.Axis, s.Test)
				if err != nil {
					return nil, err
				}
				next = append(next, vs...)
			}
		}
		// Attach the step's qualifiers, which may fork further.
		for _, q := range s.Preds {
			var withPred []variant
			for _, v := range next {
				forks, err := tr.attachPred(v, q)
				if err != nil {
					return nil, err
				}
				withPred = append(withPred, forks...)
			}
			next = withPred
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return cur, nil
}

// stepFrom advances one variant by one main-path step, forking per schema
// resolution.
func (tr *translator) stepFrom(v variant, axis xpath.Axis, test string) ([]variant, error) {
	var out []variant
	switch axis {
	case xpath.Child:
		e := tr.m.Schema.Element(v.label)
		if e == nil {
			return nil, nil
		}
		for _, c := range e.ChildNames() {
			if test != xpath.Wildcard && c != test {
				continue
			}
			nb := v.block.clone()
			a := nb.addAlias(tr.m.ByElement[c].Table)
			nb.conds = append(nb.conds, a+".pid = "+v.alias+".id")
			out = append(out, variant{block: nb, label: c, alias: a})
		}
	case xpath.Descendant:
		for _, l := range tr.labelsMatching(test) {
			chains, err := tr.m.Schema.Paths(v.label, l)
			if err != nil {
				return nil, err
			}
			for _, chain := range chains {
				if len(chain) < 2 {
					continue // descendant excludes the context itself
				}
				nb := v.block.clone()
				nv, err := tr.buildChainFrom(nb, v.alias, chain[1:])
				if err != nil {
					return nil, err
				}
				out = append(out, nv)
			}
		}
	}
	return out, nil
}

// buildChainFrom appends a child-axis label chain below the given alias
// (empty alias anchors at the document root, whose tuple is the only one in
// its table because each database stores one document).
func (tr *translator) buildChainFrom(b *selectBlock, parentAlias string, chain []string) (variant, error) {
	alias := parentAlias
	label := ""
	for _, l := range chain {
		ti := tr.m.ByElement[l]
		if ti == nil {
			return variant{}, fmt.Errorf("shred: element type %q not in mapping", l)
		}
		a := b.addAlias(ti.Table)
		if alias != "" {
			b.conds = append(b.conds, a+".pid = "+alias+".id")
		}
		alias = a
		label = l
	}
	return variant{block: b, label: label, alias: alias}, nil
}

// labelsMatching returns the schema labels a node test can denote.
func (tr *translator) labelsMatching(test string) []string {
	if test != xpath.Wildcard {
		if tr.m.ByElement[test] == nil {
			return nil
		}
		return []string{test}
	}
	names := tr.m.Schema.Names()
	out := make([]string, len(names))
	copy(out, names)
	sort.Strings(out)
	return out
}

// attachPred embeds a qualifier at the variant's cursor node. The result is
// the list of forked variants (each fork is one schema resolution of the
// qualifier; their UNION realizes the qualifier's existential semantics).
// An empty result means the qualifier is schema-unsatisfiable there.
func (tr *translator) attachPred(v variant, q *xpath.Pred) ([]variant, error) {
	switch q.Kind {
	case xpath.Or:
		// Disjunction forks into UNION branches (set semantics dedups).
		lefts, err := tr.attachPred(v, q.Left)
		if err != nil {
			return nil, err
		}
		rights, err := tr.attachPred(v, q.Right)
		if err != nil {
			return nil, err
		}
		return append(lefts, rights...), nil
	case xpath.And:
		lefts, err := tr.attachPred(v, q.Left)
		if err != nil {
			return nil, err
		}
		var out []variant
		for _, lv := range lefts {
			rights, err := tr.attachPred(lv, q.Right)
			if err != nil {
				return nil, err
			}
			out = append(out, rights...)
		}
		return out, nil
	case xpath.Exists:
		return tr.attachPredPath(v, q.Path, nil)
	case xpath.Cmp:
		return tr.attachPredPath(v, q.Path, &valueCond{op: q.Op, lit: q.Value})
	}
	return nil, fmt.Errorf("shred: unknown qualifier kind")
}

type valueCond struct {
	op  xpath.CmpOp
	lit xpath.Literal
}

// attachPredPath embeds a relative qualifier path as joins from the
// variant's cursor, forking per schema resolution. The returned variants
// keep the *main* cursor (label/alias) of v, so subsequent main-path steps
// continue from the right node.
func (tr *translator) attachPredPath(v variant, p *xpath.Path, vc *valueCond) ([]variant, error) {
	// qv tracks a fork: the block plus the qualifier-path cursor within it.
	type qv struct {
		block *selectBlock
		label string
		alias string
	}
	cur := []qv{{block: v.block, label: v.label, alias: v.alias}}
	for _, s := range p.Steps {
		var next []qv
		for _, st := range cur {
			switch s.Axis {
			case xpath.Child:
				e := tr.m.Schema.Element(st.label)
				if e == nil {
					continue
				}
				for _, c := range e.ChildNames() {
					if s.Test != xpath.Wildcard && c != s.Test {
						continue
					}
					nb := st.block.clone()
					a := nb.addAlias(tr.m.ByElement[c].Table)
					nb.conds = append(nb.conds, a+".pid = "+st.alias+".id")
					next = append(next, qv{block: nb, label: c, alias: a})
				}
			case xpath.Descendant:
				for _, l := range tr.labelsMatching(s.Test) {
					chains, err := tr.m.Schema.Paths(st.label, l)
					if err != nil {
						return nil, err
					}
					for _, chain := range chains {
						if len(chain) < 2 {
							continue
						}
						nb := st.block.clone()
						nv, err := tr.buildChainFrom(nb, st.alias, chain[1:])
						if err != nil {
							return nil, err
						}
						next = append(next, qv{block: nv.block, label: nv.label, alias: nv.alias})
					}
				}
			}
		}
		// Nested qualifiers attach at each fork's resolved node.
		if len(s.Preds) > 0 {
			var withNested []qv
			for _, st := range next {
				forks := []variant{{block: st.block, label: st.label, alias: st.alias}}
				for _, nq := range s.Preds {
					var acc []variant
					for _, f := range forks {
						fs, err := tr.attachPred(f, nq)
						if err != nil {
							return nil, err
						}
						acc = append(acc, fs...)
					}
					forks = acc
				}
				for _, f := range forks {
					withNested = append(withNested, qv{block: f.block, label: st.label, alias: st.alias})
				}
			}
			next = withNested
		}
		cur = next
		if len(cur) == 0 {
			return nil, nil
		}
	}
	var out []variant
	for _, st := range cur {
		if vc != nil {
			ok, err := tr.addValueCond(st.block, st.label, st.alias, vc)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, variant{block: st.block, label: v.label, alias: v.alias})
	}
	return out, nil
}

// addValueCond emits the v-column comparison of a value qualifier; it
// reports false when the schema says the element never has character data,
// making the comparison unsatisfiable.
func (tr *translator) addValueCond(b *selectBlock, label, alias string, vc *valueCond) (bool, error) {
	ti := tr.m.ByElement[label]
	if ti == nil || !ti.HasValue {
		return false, nil
	}
	var lit string
	if vc.lit.IsNum {
		if vc.lit.Num != float64(int64(vc.lit.Num)) {
			return false, fmt.Errorf("shred: non-integer literal %v not supported by the SQL subset", vc.lit.Num)
		}
		lit = strconv.FormatInt(int64(vc.lit.Num), 10)
	} else {
		lit = "'" + strings.ReplaceAll(vc.lit.Str, "'", "''") + "'"
	}
	op := map[xpath.CmpOp]string{
		xpath.Eq: "=", xpath.Ne: "<>", xpath.Lt: "<",
		xpath.Le: "<=", xpath.Gt: ">", xpath.Ge: ">=",
	}[vc.op]
	b.conds = append(b.conds, alias+".v "+op+" "+lit)
	return true, nil
}
