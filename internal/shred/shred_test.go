package shred

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"xmlac/internal/dtd"
	"xmlac/internal/hospital"
	"xmlac/internal/sqldb"
	"xmlac/internal/xmltree"
	"xmlac/internal/xpath"
)

func hospitalMapping(t *testing.T) *Mapping {
	t.Helper()
	m, err := BuildMapping(hospital.Schema())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func loadHospital(t *testing.T, engine sqldb.Engine) (*sqldb.Database, *Mapping, *xmltree.Document) {
	t.Helper()
	m := hospitalMapping(t)
	db := sqldb.Open(engine)
	doc := hospital.Document()
	if err := NewShredder(m).IntoDB(db, doc); err != nil {
		t.Fatal(err)
	}
	return db, m, doc
}

func TestBuildMappingHospital(t *testing.T) {
	m := hospitalMapping(t)
	if len(m.Tables()) != 18 {
		t.Fatalf("tables = %d", len(m.Tables()))
	}
	pat := m.TableFor("patient")
	if pat.Table != "patient" || pat.HasValue {
		t.Fatalf("patient info = %+v", pat)
	}
	med := m.TableFor("med")
	if !med.HasValue {
		t.Fatalf("med should have a v column")
	}
	// name has three possible parents.
	if got := m.TableFor("name").ParentTables; len(got) != 3 {
		t.Fatalf("name parents = %v", got)
	}
	// test is a SQL-safe identifier here; bill unique parent? No: two.
	if got := m.TableFor("bill").ParentTables; !reflect.DeepEqual(got, []string{"experimental", "regular"}) {
		t.Fatalf("bill parents = %v", got)
	}
}

func TestBuildMappingRejectsRecursive(t *testing.T) {
	s := dtd.MustParse(`<!ELEMENT a (b?)> <!ELEMENT b (a?)>`)
	if _, err := BuildMapping(s); err == nil {
		t.Fatal("expected recursion error")
	}
}

func TestMappingSanitizesKeywords(t *testing.T) {
	s := dtd.MustParse(`
<!ELEMENT site (from*, text*, date*)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT text (#PCDATA)>
<!ELEMENT date (#PCDATA)>
`)
	m, err := BuildMapping(s)
	if err != nil {
		t.Fatal(err)
	}
	// "from" and "text" collide with SQL keywords and must be renamed;
	// "date" is no keyword in this dialect and may keep its name.
	for _, el := range []string{"from", "text"} {
		tbl := m.TableFor(el).Table
		if strings.EqualFold(tbl, el) {
			t.Errorf("element %q mapped to unsanitized keyword table %q", el, tbl)
		}
	}
	// The DDL must actually execute.
	db := sqldb.Open(sqldb.EngineRow)
	if _, err := db.ExecScript(m.DDL()); err != nil {
		t.Fatalf("DDL failed: %v\n%s", err, m.DDL())
	}
}

func TestDDLShape(t *testing.T) {
	m := hospitalMapping(t)
	ddl := m.DDL()
	if !strings.Contains(ddl, "CREATE TABLE patient (id INT PRIMARY KEY, pid INT, s TEXT") {
		t.Fatalf("ddl = %s", ddl)
	}
	if !strings.Contains(ddl, "CREATE TABLE med (id INT PRIMARY KEY, pid INT, v TEXT, s TEXT, FOREIGN KEY (pid) REFERENCES regular (id));") {
		t.Fatalf("ddl = %s", ddl)
	}
	// bill has two possible parents: no FOREIGN KEY clause.
	for _, line := range strings.Split(ddl, "\n") {
		if strings.HasPrefix(line, "CREATE TABLE bill ") && strings.Contains(line, "FOREIGN KEY") {
			t.Fatalf("bill should have no FK: %s", line)
		}
	}
}

// TestShredHospitalTable4 verifies the relational representation of the
// Figure 2 document (paper Table 4): one tuple per element node, correct
// parent links, values in v, default '-' signs.
func TestShredHospitalTable4(t *testing.T) {
	db, _, doc := loadHospital(t, sqldb.EngineRow)
	// One tuple per element node.
	total := 0
	for _, tn := range db.TableNames() {
		total += db.Table(tn).RowCount()
	}
	if total != doc.ElementCount() {
		t.Fatalf("tuples = %d, elements = %d", total, doc.ElementCount())
	}
	// Three patients, all children of the single patients tuple.
	r, err := db.Exec(`SELECT p.id, p.pid FROM patient p`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("patients = %d", len(r.Rows))
	}
	var patientsID int64
	{
		rr, err := db.Exec(`SELECT id FROM patients`)
		if err != nil || len(rr.Rows) != 1 {
			t.Fatalf("patients table: %v %v", rr, err)
		}
		patientsID = rr.Rows[0][0].I
	}
	for _, row := range r.Rows {
		if row[1].I != patientsID {
			t.Fatalf("patient %d has pid %d, want %d", row[0].I, row[1].I, patientsID)
		}
	}
	// Values land in v, e.g. john doe's name.
	r, err = db.Exec(`SELECT n.v FROM name n, patient p WHERE n.pid = p.id`)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, row := range r.Rows {
		names[row[0].S] = true
	}
	for _, want := range []string{"john doe", "jane doe", "joy smith"} {
		if !names[want] {
			t.Fatalf("missing name %q in %v", want, names)
		}
	}
	// Default signs are '-'.
	r, err = db.Exec(`SELECT s FROM med`)
	if err != nil || len(r.Rows) != 1 || r.Rows[0][0].S != "-" {
		t.Fatalf("med sign: %v %v", r, err)
	}
	// The root tuple has NULL pid.
	r, err = db.Exec(`SELECT COUNT(*) FROM hospital`)
	if err != nil || r.Rows[0][0].I != 1 {
		t.Fatalf("hospital count: %v %v", r, err)
	}
}

func TestShredPreservesSigns(t *testing.T) {
	m := hospitalMapping(t)
	doc := hospital.Document()
	// Mark one node accessible before shredding.
	doc.ElementsByLabel("regular")[0].Sign = xmltree.SignPlus
	db := sqldb.Open(sqldb.EngineColumn)
	if err := NewShredder(m).IntoDB(db, doc); err != nil {
		t.Fatal(err)
	}
	r, err := db.Exec(`SELECT s FROM regular`)
	if err != nil || len(r.Rows) != 1 || r.Rows[0][0].S != "+" {
		t.Fatalf("regular sign: %v %v", r, err)
	}
}

func TestToSQLAndLoad(t *testing.T) {
	m := hospitalMapping(t)
	doc := hospital.Document()
	var b strings.Builder
	if err := NewShredder(m).ToSQL(&b, doc); err != nil {
		t.Fatal(err)
	}
	script := b.String()
	if !strings.Contains(script, "INSERT INTO name VALUES") {
		t.Fatalf("script missing inserts:\n%s", script)
	}
	db := sqldb.Open(sqldb.EngineRow)
	n, err := db.ExecScript(script)
	if err != nil {
		t.Fatal(err)
	}
	wantStmts := 18 + doc.ElementCount() // DDL + one INSERT per element
	if n != wantStmts {
		t.Fatalf("statements = %d, want %d", n, wantStmts)
	}
	// The scripted load equals the direct load.
	db2 := sqldb.Open(sqldb.EngineRow)
	if err := NewShredder(m).IntoDB(db2, doc); err != nil {
		t.Fatal(err)
	}
	for _, tn := range db.TableNames() {
		if db.Table(tn).RowCount() != db2.Table(tn).RowCount() {
			t.Fatalf("table %s differs: %d vs %d", tn, db.Table(tn).RowCount(), db2.Table(tn).RowCount())
		}
	}
}

func TestRebuildRoundTrip(t *testing.T) {
	for _, eng := range []sqldb.Engine{sqldb.EngineRow, sqldb.EngineColumn} {
		db, m, doc := loadHospital(t, eng)
		re, err := Rebuild(db, m)
		if err != nil {
			t.Fatal(err)
		}
		if re.String() != doc.String() {
			t.Fatalf("round trip mismatch:\n%s\nvs\n%s", re.String(), doc.String())
		}
		// Universal ids preserved.
		for _, n := range doc.Elements() {
			rn := re.NodeByID(n.ID)
			if rn == nil || rn.Label != n.Label {
				t.Fatalf("node %d (%s) lost in round trip", n.ID, n.Label)
			}
		}
	}
}

func TestRebuildErrors(t *testing.T) {
	m := hospitalMapping(t)
	db := sqldb.Open(sqldb.EngineRow)
	if _, err := db.ExecScript(m.DDL()); err != nil {
		t.Fatal(err)
	}
	if _, err := Rebuild(db, m); err == nil {
		t.Fatal("expected empty-database error")
	}
	// Two roots.
	if _, err := db.Exec(`INSERT INTO hospital VALUES (1, NULL, '-')`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO dept VALUES (2, NULL, '-')`); err != nil {
		t.Fatal(err)
	}
	if _, err := Rebuild(db, m); err == nil {
		t.Fatal("expected multiple-roots error")
	}
}

// evalSQL runs a translated query and returns sorted ids.
func evalSQL(t *testing.T, db *sqldb.Database, m *Mapping, expr string) []int64 {
	t.Helper()
	q, err := Translate(m, xpath.MustParse(expr))
	if err != nil {
		t.Fatalf("Translate(%s): %v", expr, err)
	}
	r, err := db.Exec(q)
	if err != nil {
		t.Fatalf("Exec(%s): %v\nSQL: %s", expr, err, q)
	}
	var ids []int64
	for _, row := range r.Rows {
		ids = append(ids, row[0].I)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sameIDs compares two sorted id slices, treating nil and empty alike.
func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// evalXPath evaluates the same expression natively for comparison.
func evalXPath(t *testing.T, doc *xmltree.Document, expr string) []int64 {
	t.Helper()
	nodes, err := xpath.Eval(xpath.MustParse(expr), doc)
	if err != nil {
		t.Fatal(err)
	}
	return xmltree.SortedIDs(nodes)
}

// TestTranslateMatchesNativeEval: the central equivalence — for every rule
// of the paper's policy and a batch of other expressions, the translated SQL
// returns exactly the universal ids the native XPath evaluator returns.
func TestTranslateMatchesNativeEval(t *testing.T) {
	for _, eng := range []sqldb.Engine{sqldb.EngineRow, sqldb.EngineColumn} {
		db, m, doc := loadHospital(t, eng)
		exprs := []string{
			// Table 1 rules.
			"//patient",
			"//patient/name",
			"//patient[treatment]",
			"//patient[treatment]/name",
			"//patient[.//experimental]",
			"//regular",
			`//regular[med = "celecoxib"]`,
			"//regular[bill > 1000]",
			// Structure.
			"/hospital",
			"/hospital/dept",
			"/hospital/dept/patients/patient",
			"//name",
			"//bill",
			"//dept//bill",
			"//treatment/*",
			"/*",
			"//*",
			"//patient/*",
			// Qualifiers.
			"//patient[treatment/regular]",
			"//patient[treatment/regular/med]",
			"//dept[.//bill]",
			"//dept[.//experimental]",
			"//patient[psn and name]",
			`//patient[name = "joy smith"]`,
			`//patient[psn = "033"]`,
			"//regular[bill >= 700]",
			"//regular[bill < 700]",
			"//regular[bill <= 700]",
			"//regular[bill != 700]",
			`//experimental[bill > 1000]`,
			"//treatment[regular and experimental]",
			"//patient[treatment[regular[bill]]]",
			// Schema-unsatisfiable.
			"//psn/bill",
			"//bogus",
			"/dept",
			"//patient[bogus]",
			`//patient[psn = "033"]/name`,
		}
		for _, e := range exprs {
			want := evalXPath(t, doc, e)
			got := evalSQL(t, db, m, e)
			if !sameIDs(got, want) {
				q, _ := Translate(m, xpath.MustParse(e))
				t.Errorf("engine %v: %s: sql ids %v != native %v\nSQL: %s", eng, e, got, want, q)
			}
		}
	}
}

// TestTranslatePaperQ1Shape: the translation of R1 joins patient to patients
// as the paper's Q1 does.
func TestTranslatePaperQ1Shape(t *testing.T) {
	m := hospitalMapping(t)
	q, err := Translate(m, xpath.MustParse("//patient"))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"patient", "patients", "pid", "SELECT"} {
		if !strings.Contains(q, frag) {
			t.Fatalf("Q1 missing %q: %s", frag, q)
		}
	}
}

func TestTranslateErrors(t *testing.T) {
	m := hospitalMapping(t)
	if _, err := Translate(m, xpath.MustParse("patient")); err == nil {
		t.Fatal("relative path accepted")
	}
	if _, err := Translate(m, xpath.MustParse("//regular[bill > 10.5]")); err == nil {
		t.Fatal("non-integer literal accepted")
	}
}

// TestTranslateOnGenerated cross-checks SQL vs native evaluation on larger
// generated hospital documents.
func TestTranslateOnGenerated(t *testing.T) {
	m := hospitalMapping(t)
	doc := hospital.Generate(hospital.GenOptions{Seed: 7, Departments: 3, PatientsPerDept: 25, StaffPerDept: 10})
	if errs := hospital.Schema().Validate(doc); len(errs) > 0 {
		t.Fatalf("generated doc invalid: %v", errs[0])
	}
	db := sqldb.Open(sqldb.EngineColumn)
	if err := NewShredder(m).IntoDB(db, doc); err != nil {
		t.Fatal(err)
	}
	exprs := []string{
		"//patient",
		"//patient[treatment]",
		"//patient[.//experimental]",
		`//regular[med = "celecoxib"]`,
		"//regular[bill > 1000]",
		"//staff/*/name",
		"//doctor",
		"//dept[.//test]",
	}
	for _, e := range exprs {
		want := evalXPath(t, doc, e)
		got := evalSQL(t, db, m, e)
		if !sameIDs(got, want) {
			t.Errorf("%s: sql %d ids != native %d ids", e, len(got), len(want))
		}
	}
}

func TestGeneratedDocsGrowWithSize(t *testing.T) {
	small := hospital.Generate(hospital.GenOptions{Seed: 1, Departments: 1, PatientsPerDept: 5})
	big := hospital.Generate(hospital.GenOptions{Seed: 1, Departments: 2, PatientsPerDept: 50})
	if big.Size() <= small.Size() {
		t.Fatalf("sizes: %d vs %d", small.Size(), big.Size())
	}
	// Determinism.
	again := hospital.Generate(hospital.GenOptions{Seed: 1, Departments: 1, PatientsPerDept: 5})
	if again.String() != small.String() {
		t.Fatal("generator is not deterministic")
	}
}

func TestAttrColumns(t *testing.T) {
	s := dtd.MustParse(`
<!ELEMENT item (#PCDATA)>
<!ATTLIST item id ID #REQUIRED
               kind CDATA #IMPLIED>
`)
	m, err := BuildMapping(s)
	if err != nil {
		t.Fatal(err)
	}
	ddl := m.DDL()
	if !strings.Contains(ddl, "a_id TEXT") || !strings.Contains(ddl, "a_kind TEXT") {
		t.Fatalf("ddl = %s", ddl)
	}
	doc, err := xmltree.ParseString(`<item id="i1" kind="gold">hello</item>`)
	if err != nil {
		t.Fatal(err)
	}
	db := sqldb.Open(sqldb.EngineRow)
	if err := NewShredder(m).IntoDB(db, doc); err != nil {
		t.Fatal(err)
	}
	r, err := db.Exec(`SELECT a_id, a_kind, v FROM item`)
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if row[0].S != "i1" || row[1].S != "gold" || row[2].S != "hello" {
		t.Fatalf("row = %v", row)
	}
	// Attributes survive the round trip.
	re, err := Rebuild(db, m)
	if err != nil {
		t.Fatal(err)
	}
	if re.Root().Attrs["id"] != "i1" || re.Root().Attrs["kind"] != "gold" {
		t.Fatalf("rebuilt attrs = %v", re.Root().Attrs)
	}
}

func TestShredUnknownElement(t *testing.T) {
	m := hospitalMapping(t)
	doc, _ := xmltree.ParseString(`<hospital><zot/></hospital>`)
	db := sqldb.Open(sqldb.EngineRow)
	if err := NewShredder(m).IntoDB(db, doc); err == nil {
		t.Fatal("expected unknown-element error")
	}
}

func TestShredderDefaultSign(t *testing.T) {
	m := hospitalMapping(t)
	sh := NewShredder(m)
	sh.DefaultSign = xmltree.SignPlus
	db := sqldb.Open(sqldb.EngineRow)
	if err := sh.IntoDB(db, hospital.Document()); err != nil {
		t.Fatal(err)
	}
	r, err := db.Exec(`SELECT s FROM psn`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row[0].S != "+" {
			t.Fatalf("sign = %q", row[0].S)
		}
	}
}

func TestTranslateVariantDedup(t *testing.T) {
	// //name//... no; check that a query with overlapping expansions still
	// returns set-unique ids.
	db, m, _ := loadHospital(t, sqldb.EngineRow)
	ids := evalSQL(t, db, m, "//dept[.//bill]")
	seen := map[int64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	_ = fmt.Sprint(ids)
}
