package shred

import (
	"strings"
	"testing"

	"xmlac/internal/dtd"
	"xmlac/internal/sqldb"
	"xmlac/internal/xmltree"
	"xmlac/internal/xpath"
)

// The EXPLAIN statement surfaces the greedy planner's decisions for the
// queries the XPath→SQL translator produces. These golden tests pin the
// plan for a three-table join chain: the access path of every base
// relation, the join order (smallest filtered relation first), and the
// switch to an index path once one exists.

func explainFixture(t *testing.T, engine sqldb.Engine) (*sqldb.Database, *Mapping) {
	t.Helper()
	schema := dtd.MustParse(`
<!ELEMENT a (b*)>
<!ELEMENT b (c*)>
<!ELEMENT c (#PCDATA)>
`)
	m, err := BuildMapping(schema)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseString(`<a><b><c>x</c><c>y</c></b><b><c>x</c></b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	db := sqldb.Open(engine)
	if err := NewShredder(m).IntoDB(db, doc); err != nil {
		t.Fatal(err)
	}
	return db, m
}

func explainLines(t *testing.T, db *sqldb.Database, sql string) []string {
	t.Helper()
	res, err := db.Exec("EXPLAIN " + sql)
	if err != nil {
		t.Fatalf("EXPLAIN: %v\nSQL: %s", err, sql)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("EXPLAIN columns = %v", res.Columns)
	}
	var lines []string
	for _, row := range res.Rows {
		lines = append(lines, row[0].S)
	}
	return lines
}

func checkPlan(t *testing.T, got, want []string) {
	t.Helper()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("plan mismatch\ngot:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

func TestExplainJoinChain(t *testing.T) {
	db, m := explainFixture(t, sqldb.EngineRow)
	sql, err := Translate(m, xpath.MustParse(`/a/b[c = "x"]`))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sql, " t"); !strings.Contains(sql, "FROM") || got < 3 {
		t.Fatalf("expected a three-alias join chain, got %q", sql)
	}

	// Without a secondary index, the value predicate runs as a column scan;
	// the join starts from the single-row root relation.
	checkPlan(t, explainLines(t, db, sql), []string{
		"scan t1 (a): full scan [scan=row] → 1 rows",
		"scan t2 (b): full scan [scan=row] → 2 rows",
		"scan t3 (c): column scan on v [scan=row] → 2 rows",
		"join: start t1 → 1 tuples",
		"join: hash t2 on t2.pid = t1.id → 2 tuples",
		"join: hash t3 on t3.pid = t2.id → 2 tuples",
		"join order: t1, t2, t3",
		"output: 2 rows",
	})

	// With an index on the value column the scan switches access path; the
	// join order is unchanged.
	if _, err := db.Exec(`CREATE INDEX c_v ON c (v)`); err != nil {
		t.Fatal(err)
	}
	checkPlan(t, explainLines(t, db, sql), []string{
		"scan t1 (a): full scan [scan=row] → 1 rows",
		"scan t2 (b): full scan [scan=row] → 2 rows",
		"scan t3 (c): secondary index on v [scan=row] → 2 rows",
		"join: start t1 → 1 tuples",
		"join: hash t2 on t2.pid = t1.id → 2 tuples",
		"join: hash t3 on t3.pid = t2.id → 2 tuples",
		"join order: t1, t2, t3",
		"output: 2 rows",
	})
}

func TestExplainCompoundAndPointLookup(t *testing.T) {
	db, _ := explainFixture(t, sqldb.EngineColumn)

	checkPlan(t, explainLines(t, db, `SELECT id FROM b UNION SELECT id FROM c`), []string{
		"UNION",
		"  scan b (b): full scan [scan=row] → 2 rows",
		"  scan c (c): full scan [scan=row] → 3 rows",
		"output: 5 rows",
	})

	checkPlan(t, explainLines(t, db, `SELECT id FROM c EXCEPT SELECT id FROM c WHERE id = 3`), []string{
		"EXCEPT",
		"  scan c (c): full scan [scan=row] → 3 rows",
		"  scan c (c): pk index point lookup [scan=row] → 1 rows",
		"output: 2 rows",
	})

	// EXPLAIN DELETE is a dry run: it reports the access path and match
	// count without removing anything.
	checkPlan(t, explainLines(t, db, `DELETE FROM c WHERE id = 3`), []string{
		"delete c: pk index point lookup [scan=row] → 1 rows (dry run)",
	})
	if res, err := db.Exec(`SELECT id FROM c`); err != nil || len(res.Rows) != 3 {
		t.Fatalf("EXPLAIN DELETE mutated the table: rows=%v err=%v", res, err)
	}

	// EXPLAIN cannot nest.
	if _, err := db.Exec(`EXPLAIN EXPLAIN SELECT id FROM c`); err == nil {
		t.Fatal("expected error for nested EXPLAIN")
	}
}
