// Package shred implements the ShreX-style XML-to-relational mapping of the
// paper (Sections 4 and 5.2): relational schema creation from a DTD,
// document shredding into tuples (directly into a database or as a SQL
// INSERT script), and the XPath-to-SQL translation used to evaluate rule
// resources and queries over the shredded representation.
//
// Following the paper, every element type E of the schema maps to a table
//
//	E(id, pid, [attribute columns,] [v,] s)
//
// where id is the primary key (the node's universal identifier — unique
// across the whole database, not just the table), pid is a foreign key to
// the parent element's table, v holds the node's character data when the
// content model admits #PCDATA, and s stores the node's access permission
// ('+' or '-').
package shred

import (
	"fmt"
	"sort"
	"strings"

	"xmlac/internal/dtd"
)

// SignColumn is the name of the access-permission column.
const SignColumn = "s"

// TableInfo describes the relational table one element type maps to.
type TableInfo struct {
	// Element is the XML element type name.
	Element string
	// Table is the (sanitized) SQL table name.
	Table string
	// HasValue reports whether the table has a v column (#PCDATA content).
	HasValue bool
	// Attrs are the declared attribute names, in declaration order; each
	// maps to a column named "a_<name>".
	Attrs []string
	// ParentTables are the tables whose rows can be this table's parents.
	ParentTables []string
}

// Mapping is a complete XML-to-relational mapping for one schema.
type Mapping struct {
	Schema *dtd.Schema
	// ByElement maps element type name to its table info.
	ByElement map[string]*TableInfo
	// order preserves schema declaration order.
	order []string
	// owners routes universal identifiers to their owning table (built as
	// documents are shredded, maintained on insert/delete). Nil for
	// hand-constructed mappings; every routing method degrades gracefully.
	owners *OwnerIndex
}

// reservedSuffix disambiguates element names that collide with SQL keywords
// or with each other after sanitization.
const reservedSuffix = "_t"

// BuildMapping constructs the relational mapping for a schema.
func BuildMapping(schema *dtd.Schema) (*Mapping, error) {
	if rec, cyc := schema.IsRecursive(); rec {
		// The mapping itself would work for recursive schemas, but the
		// XPath-to-SQL translation would not terminate; the paper de-recursed
		// its schemas for the same reason.
		return nil, fmt.Errorf("shred: schema is recursive (cycle %v)", cyc)
	}
	m := &Mapping{Schema: schema, ByElement: map[string]*TableInfo{}, owners: &OwnerIndex{}}
	used := map[string]bool{}
	for _, name := range schema.Names() {
		e := schema.Element(name)
		tbl := sanitizeIdent(name)
		for used[tbl] {
			tbl += reservedSuffix
		}
		used[tbl] = true
		ti := &TableInfo{Element: name, Table: tbl, HasValue: e.HasText()}
		for _, a := range e.Attrs {
			ti.Attrs = append(ti.Attrs, a.Name)
		}
		m.ByElement[name] = ti
		m.order = append(m.order, name)
	}
	for _, name := range schema.Names() {
		var parents []string
		for _, p := range schema.Parents(name) {
			parents = append(parents, m.ByElement[p].Table)
		}
		sort.Strings(parents)
		m.ByElement[name].ParentTables = parents
	}
	return m, nil
}

// Tables returns the table infos in schema declaration order.
func (m *Mapping) Tables() []*TableInfo {
	out := make([]*TableInfo, len(m.order))
	for i, name := range m.order {
		out[i] = m.ByElement[name]
	}
	return out
}

// TableFor returns the table info of an element type, or nil.
func (m *Mapping) TableFor(element string) *TableInfo { return m.ByElement[element] }

// AttrColumn is the column name an attribute maps to. The "a_" prefix
// already guarantees the name is no SQL keyword, so only punctuation needs
// rewriting.
func AttrColumn(attr string) string { return "a_" + rewritePunct(attr) }

// DDL emits the CREATE TABLE statements of the mapping, in declaration
// order. A FOREIGN KEY clause is emitted only when the element type has a
// unique parent type (shared children such as the hospital schema's name
// element have several possible parent tables).
func (m *Mapping) DDL() string {
	var b strings.Builder
	for _, ti := range m.Tables() {
		fmt.Fprintf(&b, "CREATE TABLE %s (id INT PRIMARY KEY, pid INT", ti.Table)
		for _, a := range ti.Attrs {
			fmt.Fprintf(&b, ", %s TEXT", AttrColumn(a))
		}
		if ti.HasValue {
			b.WriteString(", v TEXT")
		}
		fmt.Fprintf(&b, ", %s TEXT", SignColumn)
		if len(ti.ParentTables) == 1 {
			fmt.Fprintf(&b, ", FOREIGN KEY (pid) REFERENCES %s (id)", ti.ParentTables[0])
		}
		b.WriteString(");\n")
	}
	return b.String()
}

// IndexDDL emits CREATE INDEX statements over the pid and s columns of every
// table, in declaration order. The pid index resolves the parent-child joins
// of translated queries; the s index resolves sign predicates (pushdown
// queries, accessible-id sweeps) without full scans. Kept separate from
// DDL() so the shredded SQL scripts (Table 5 sizes, Figure 9 loading) retain
// the paper's shape; IntoDB executes both.
func (m *Mapping) IndexDDL() string {
	var b strings.Builder
	for _, ti := range m.Tables() {
		fmt.Fprintf(&b, "CREATE INDEX %s_pid_idx ON %s (pid);\n", ti.Table, ti.Table)
		fmt.Fprintf(&b, "CREATE INDEX %s_s_idx ON %s (%s);\n", ti.Table, ti.Table, SignColumn)
	}
	return b.String()
}

// sanitizeIdent makes an XML name a safe SQL identifier: dashes, dots and
// colons become underscores, and names that collide with SQL keywords get a
// suffix (XMark's "text", "from", "date" element types would otherwise be
// unparsable as table names).
func sanitizeIdent(name string) string {
	out := rewritePunct(name)
	if out == "" {
		out = "x"
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "x" + out
	}
	if sqlReserved[strings.ToUpper(out)] {
		out += reservedSuffix
	}
	return out
}

// rewritePunct replaces the XML name punctuation SQL identifiers disallow.
func rewritePunct(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '-' || c == '.' || c == ':' {
			b.WriteByte('_')
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// sqlReserved lists the keywords of the sqldb dialect (kept in sync with its
// lexer) plus the reserved column names of the mapping.
var sqlReserved = map[string]bool{
	"CREATE": true, "TABLE": true, "INDEX": true, "ON": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"UNION": true, "EXCEPT": true, "INTERSECT": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"PRIMARY": true, "KEY": true, "FOREIGN": true, "REFERENCES": true,
	"INT": true, "INTEGER": true, "BIGINT": true,
	"TEXT": true, "VARCHAR": true, "CHAR": true,
	"NULL": true, "IN": true, "COUNT": true, "AS": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "DISTINCT": true,
	"ID": true, "PID": true, "V": true, "S": true,
}
