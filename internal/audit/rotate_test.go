package audit

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRotatingFileShifts: writes past maxBytes rotate path -> path.1 ->
// path.2, the oldest generation is deleted, and OnRotate sees every
// rotation count.
func TestRotatingFileShifts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	rf, err := OpenRotatingFile(path, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	var counts []uint64
	rf.OnRotate(func(n uint64) { counts = append(counts, n) })

	line := func(s string) { // 8 bytes each, two fit under maxBytes=10
		t.Helper()
		if _, err := rf.Write([]byte(s + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	line("aaaaaaa")
	line("bbbbbbb") // 8+8 > 10: rotates first
	line("ccccccc") // rotates again
	line("ddddddd") // rotates: the "a" generation falls off the end

	if got := rf.Rotations(); got != 3 {
		t.Fatalf("rotations = %d, want 3", got)
	}
	if len(counts) != 3 || counts[2] != 3 {
		t.Fatalf("OnRotate counts = %v, want [1 2 3]", counts)
	}
	read := func(p string) string {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		return strings.TrimSpace(string(data))
	}
	if got := read(path); got != "ddddddd" {
		t.Fatalf("live file = %q", got)
	}
	if got := read(path + ".1"); got != "ccccccc" {
		t.Fatalf("path.1 = %q", got)
	}
	if got := read(path + ".2"); got != "bbbbbbb" {
		t.Fatalf("path.2 = %q", got)
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Fatalf("path.3 exists: the maxFiles bound leaked a generation")
	}
}

// TestRotatingFileSingleRecordOversized: one record larger than maxBytes
// is still written whole (after rotating away whatever preceded it).
func TestRotatingFileSingleRecordOversized(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	rf, err := OpenRotatingFile(path, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	big := strings.Repeat("x", 32) + "\n"
	if _, err := rf.Write([]byte(big)); err != nil {
		t.Fatal(err)
	}
	if rf.Rotations() != 0 {
		t.Fatal("an oversized first record must not rotate an empty file")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != big {
		t.Fatalf("oversized record truncated: %d bytes", len(data))
	}
}

// TestRotatingFileTruncateInPlace: maxFiles == 1 keeps only the live
// file, truncating on rotation instead of renaming.
func TestRotatingFileTruncateInPlace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	rf, err := OpenRotatingFile(path, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	for _, s := range []string{"aaaaaaa\n", "bbbbbbb\n"} {
		if _, err := rf.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if rf.Rotations() != 1 {
		t.Fatalf("rotations = %d, want 1", rf.Rotations())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "bbbbbbb\n" {
		t.Fatalf("live file = %q, want the post-truncate record only", data)
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatal("maxFiles=1 created a rotated generation")
	}
}

// TestRotatingFileResumesSize: reopening an existing file counts its
// current size toward the threshold.
func TestRotatingFileResumesSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	if err := os.WriteFile(path, []byte("aaaaaaa\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rf, err := OpenRotatingFile(path, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	if _, err := rf.Write([]byte("bbbbbbb\n")); err != nil {
		t.Fatal(err)
	}
	if rf.Rotations() != 1 {
		t.Fatalf("rotations = %d, want 1 (pre-existing bytes ignored)", rf.Rotations())
	}
}

// TestLogThroughRotatingFile: the Log's JSONL sink drains whole events
// through rotation; every line in every generation parses.
func TestLogThroughRotatingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	rf, err := OpenRotatingFile(path, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(0)
	l.AttachJSONL(rf, 0)
	for i := 0; i < 32; i++ {
		l.Record(Event{Kind: "request", Outcome: OutcomeGrant, Query: "//patient/name"})
	}
	l.Close()
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	if rf.Rotations() == 0 {
		t.Fatal("32 events under a 256-byte cap should have rotated")
	}
	lines := 0
	for _, p := range []string{path, path + ".1", path + ".2"} {
		data, err := os.ReadFile(p)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
				t.Fatalf("%s holds a torn line: %q", p, line)
			}
			lines++
		}
	}
	if lines == 0 {
		t.Fatal("no events survived on disk")
	}
}

// TestListen: listeners see every recorded event, delivered outside the
// ring lock (a listener can re-enter the log).
func TestListen(t *testing.T) {
	l := NewLog(4)
	var got []Event
	l.Listen(func(e Event) { got = append(got, e) })
	var reentered bool
	l.Listen(func(e Event) {
		if e.Kind == "request" && !reentered {
			reentered = true
			l.Record(Event{Kind: "echo", Outcome: OutcomeOK})
		}
	})
	l.Record(Event{Kind: "request", Outcome: OutcomeDeny, Time: time.Now()})
	if len(got) != 2 {
		t.Fatalf("listener saw %d events, want the original and the re-entrant echo", len(got))
	}
	if got[0].Kind != "request" || got[1].Kind != "echo" {
		t.Fatalf("events = %q, %q", got[0].Kind, got[1].Kind)
	}

	// Nil funcs and nil logs are inert.
	l.Listen(nil)
	var nilLog *Log
	nilLog.Listen(func(Event) {})
	nilLog.Record(Event{})
}
