// Package audit is the decision-level audit trail of the access-control
// system: a zero-dependency, concurrency-safe log of every request,
// write-access check and (re-)annotation run, recorded as structured
// events. The paper's system decides which nodes a user may see; this
// package records who asked for what, which outcome the decision had, and
// which rules produced it — the per-decision provenance an operator needs
// once the system serves real traffic.
//
// Events land in a bounded ring buffer (the newest DefaultCap events are
// always retrievable with Recent) and, optionally, stream to a JSONL
// writer through an asynchronous queue. The hot path never blocks: a full
// ring evicts its oldest event (counted by Evicted), and a saturated JSONL
// queue drops the event for the writer only (counted by Dropped) while the
// ring still keeps it.
package audit

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome classifies how a decision or run ended.
type Outcome string

const (
	// OutcomeGrant is a request or write check that passed.
	OutcomeGrant Outcome = "grant"
	// OutcomeDeny is a request or write check rejected by the policy.
	OutcomeDeny Outcome = "deny"
	// OutcomeError is a run that failed for a non-policy reason.
	OutcomeError Outcome = "error"
	// OutcomeOK is a successful annotation or re-annotation run.
	OutcomeOK Outcome = "ok"
)

// Event is one audited decision or run.
type Event struct {
	// Seq is the log-assigned sequence number, 1-based and gapless per
	// log; together with Evicted it accounts for every recorded event.
	Seq uint64 `json:"seq"`
	// Time is when the event was recorded (stamped by Record when zero).
	Time time.Time `json:"time"`
	// Kind names the audited operation: "request", "write-check",
	// "annotate" or "reannotate".
	Kind string `json:"kind"`
	// User is the requesting subject, stamped by the multi-user layer
	// (empty on single-subject systems, where the paper fixes the
	// requester).
	User string `json:"user,omitempty"`
	// Backend is the store that served the decision (xquery, monetsql,
	// postgres).
	Backend string `json:"backend,omitempty"`
	// Doc names the document the decision concerned — the catalog merges
	// per-document audit streams into one log, and Doc tells them apart.
	Doc string `json:"doc,omitempty"`
	// Semantics is the active (default, conflict-resolution) pair of
	// Table 2, e.g. "ds=-,cr=-".
	Semantics string `json:"semantics,omitempty"`
	// Query is the user query or update expression.
	Query string `json:"query,omitempty"`
	// Outcome is the decision: grant, deny, ok or error.
	Outcome Outcome `json:"outcome"`
	// Matched counts the nodes the query matched; Checked the distinct
	// nodes access-checked.
	Matched int `json:"matched,omitempty"`
	Checked int `json:"checked,omitempty"`
	// Updated and Reset carry annotation-run statistics.
	Updated int `json:"updated,omitempty"`
	Reset   int `json:"reset,omitempty"`
	// CacheHit reports whether the decision was served from the
	// CAM-backed query cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Mode names the enforcement strategy that produced a request
	// decision: "signs" (materialized annotations), "rewrite" (policy
	// composed into the query over the unannotated store) or
	// "static-deny" (refused from query shape alone, no store touched).
	// Empty on non-request events and on logs predating the enforcer seam.
	Mode string `json:"mode,omitempty"`
	// Duration is the operation's wall-clock time.
	Duration time.Duration `json:"duration_ns"`
	// Rules are the attributing rule ids: the deciding rule of a denial,
	// or the triggered rules of a re-annotation.
	Rules []string `json:"rules,omitempty"`
	// Trace is the trace id of the span tree that produced the decision
	// (16 hex digits; empty without a tracer). Looking the id up on the
	// /traces endpoint yields the decision's latency breakdown.
	Trace string `json:"trace,omitempty"`
	// Err is the error text of an OutcomeError event.
	Err string `json:"error,omitempty"`
}

// DefaultCap is the ring capacity of a Log built with NewLog(0).
const DefaultCap = 1024

// DefaultQueue is the JSONL writer queue depth of AttachJSONL(w, 0).
const DefaultQueue = 256

// Log is the bounded audit log. The zero value is not usable; build one
// with NewLog. All methods are safe for concurrent use, and a nil *Log
// no-ops on Record, so instrumented code needs no enabled-checks.
type Log struct {
	mu     sync.Mutex
	buf    []Event // ring storage, len(buf) <= cap
	next   int     // overwrite position once the ring is full
	capN   int
	seq    uint64 // events ever recorded; also the last assigned Seq
	sinkCh chan Event
	done   chan struct{}

	evicted atomic.Uint64 // ring overwrites
	dropped atomic.Uint64 // JSONL queue overflows

	listeners []func(Event)
}

// NewLog returns an audit log retaining the newest capacity events
// (DefaultCap when capacity <= 0).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Log{capN: capacity}
}

// AttachJSONL streams every subsequently recorded event to w as one JSON
// object per line, through an asynchronous queue of the given depth
// (DefaultQueue when <= 0). Events arriving while the queue is full are
// dropped from the stream — never from the ring — and counted by Dropped.
// Call Close to flush and detach the writer.
func (l *Log) AttachJSONL(w io.Writer, queue int) {
	if queue <= 0 {
		queue = DefaultQueue
	}
	ch := make(chan Event, queue)
	done := make(chan struct{})
	go func() {
		defer close(done)
		enc := json.NewEncoder(w)
		for e := range ch {
			_ = enc.Encode(e)
		}
	}()
	l.mu.Lock()
	l.sinkCh, l.done = ch, done
	l.mu.Unlock()
}

// Close detaches the JSONL writer, if any, after draining its queue. The
// ring keeps serving Recent.
func (l *Log) Close() {
	l.mu.Lock()
	ch, done := l.sinkCh, l.done
	l.sinkCh, l.done = nil, nil
	l.mu.Unlock()
	if ch != nil {
		close(ch)
		<-done
	}
}

// Listen registers fn to be called synchronously with every subsequently
// recorded event, after it is stamped and stored. Listeners run on the
// recording goroutine outside the log's lock, so they may read the log
// but must be fast — a slow listener stalls the decision path it audits.
// Listeners cannot be removed; attach them for the log's lifetime.
func (l *Log) Listen(fn func(Event)) {
	if l == nil || fn == nil {
		return
	}
	l.mu.Lock()
	l.listeners = append(l.listeners, fn)
	l.mu.Unlock()
}

// Record appends an event: it is stamped with the next sequence number
// (and the current time when e.Time is zero), stored in the ring —
// evicting the oldest event when full — and offered to the JSONL queue
// without blocking. No-op on a nil log.
func (l *Log) Record(e Event) {
	if l == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	if len(l.buf) < l.capN {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
		l.next = (l.next + 1) % l.capN
		l.evicted.Add(1)
	}
	ch := l.sinkCh
	if ch != nil {
		select {
		case ch <- e:
		default:
			l.dropped.Add(1)
		}
	}
	fns := l.listeners
	l.mu.Unlock()
	// Concurrent Records may deliver to listeners out of Seq order; the
	// observatory consumers aggregate and do not rely on ordering.
	for _, fn := range fns {
		fn(e)
	}
}

// Recent returns up to n of the newest events in chronological order
// (all retained events when n <= 0).
func (l *Log) Recent(n int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	if len(l.buf) < l.capN {
		out = append(out, l.buf...)
	} else {
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Filter returns the events of fn(e) == true among the newest n
// (all retained events when n <= 0).
func (l *Log) Filter(n int, fn func(Event) bool) []Event {
	events := l.Recent(0)
	out := make([]Event, 0, len(events))
	for _, e := range events {
		if fn(e) {
			out = append(out, e)
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Cap returns the ring capacity.
func (l *Log) Cap() int {
	if l == nil {
		return 0
	}
	return l.capN
}

// Total returns how many events were ever recorded. Total == Len +
// Evicted always holds.
func (l *Log) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Evicted returns how many events the full ring overwrote.
func (l *Log) Evicted() uint64 {
	if l == nil {
		return 0
	}
	return l.evicted.Load()
}

// Dropped returns how many events the saturated JSONL queue never wrote.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}
