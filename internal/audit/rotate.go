package audit

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// DefaultMaxBytes is the rotation threshold of OpenRotatingFile(path, 0, n).
const DefaultMaxBytes = 64 << 20 // 64 MiB

// DefaultMaxFiles is the retained-file count of OpenRotatingFile(path, n, 0):
// the live file plus two rotated generations.
const DefaultMaxFiles = 3

// RotatingFile is an io.Writer over a JSONL audit file with size-based
// rotation: once a write would push the live file past MaxBytes, the file
// is closed and renamed path -> path.1 (shifting path.1 -> path.2, ...)
// and a fresh file opened at path. At most MaxFiles files are kept (the
// live file plus MaxFiles-1 rotated generations); older generations are
// deleted. A long-running -serve process therefore holds at most
// MaxBytes*MaxFiles of audit history on disk.
//
// Writes are line-atomic as long as callers write whole lines, which the
// Log's JSONL encoder does: rotation happens only between Write calls.
type RotatingFile struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	maxFiles int
	f        *os.File
	size     int64
	rotated  atomic.Uint64
	onRotate func(n uint64)
}

// OpenRotatingFile opens (appending, creating if missing) a rotating
// audit file at path. maxBytes <= 0 defaults to DefaultMaxBytes and
// maxFiles <= 0 to DefaultMaxFiles; maxFiles == 1 keeps only the live
// file, truncating in place on rotation.
func OpenRotatingFile(path string, maxBytes int64, maxFiles int) (*RotatingFile, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if maxFiles <= 0 {
		maxFiles = DefaultMaxFiles
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &RotatingFile{path: path, maxBytes: maxBytes, maxFiles: maxFiles, f: f, size: st.Size()}, nil
}

// OnRotate registers fn to be called (on the writing goroutine, outside
// the lock) after each rotation with the total rotation count. Used to
// export audit_rotations_total.
func (r *RotatingFile) OnRotate(fn func(n uint64)) {
	r.mu.Lock()
	r.onRotate = fn
	r.mu.Unlock()
}

// Rotations returns how many times the file has been rotated.
func (r *RotatingFile) Rotations() uint64 { return r.rotated.Load() }

// Write appends p, rotating first if the live file would exceed MaxBytes.
// A single record larger than MaxBytes is still written whole.
func (r *RotatingFile) Write(p []byte) (int, error) {
	r.mu.Lock()
	var notify func(n uint64)
	var count uint64
	if r.size > 0 && r.size+int64(len(p)) > r.maxBytes {
		if err := r.rotateLocked(); err != nil {
			r.mu.Unlock()
			return 0, err
		}
		count = r.rotated.Add(1)
		notify = r.onRotate
	}
	n, err := r.f.Write(p)
	r.size += int64(n)
	r.mu.Unlock()
	if notify != nil {
		notify(count)
	}
	return n, err
}

// rotateLocked shifts path.(maxFiles-2) -> ... -> path.1 -> gone, renames
// path to path.1 and reopens a fresh live file. With maxFiles == 1 it
// truncates the live file instead.
func (r *RotatingFile) rotateLocked() error {
	if err := r.f.Close(); err != nil {
		return err
	}
	if r.maxFiles == 1 {
		f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		r.f, r.size = f, 0
		return nil
	}
	// Delete the oldest retained generation, then shift the rest up.
	os.Remove(fmt.Sprintf("%s.%d", r.path, r.maxFiles-1))
	for i := r.maxFiles - 2; i >= 1; i-- {
		os.Rename(fmt.Sprintf("%s.%d", r.path, i), fmt.Sprintf("%s.%d", r.path, i+1))
	}
	if err := os.Rename(r.path, r.path+".1"); err != nil {
		return err
	}
	f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	r.f, r.size = f, 0
	return nil
}

// Close closes the live file. Further writes fail.
func (r *RotatingFile) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.f.Close()
}
