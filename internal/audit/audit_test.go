package audit

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRingEvictionAccounting: a full ring evicts oldest-first and the
// counters account for every recorded event (Total == Len + Evicted).
func TestRingEvictionAccounting(t *testing.T) {
	l := NewLog(3)
	for i := 1; i <= 7; i++ {
		l.Record(Event{Kind: "request", Query: fmt.Sprintf("q%d", i)})
	}
	got := l.Recent(0)
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	for i, want := range []string{"q5", "q6", "q7"} {
		if got[i].Query != want {
			t.Fatalf("event %d = %q, want %q (eviction must drop oldest first)", i, got[i].Query, want)
		}
		if got[i].Seq != uint64(5+i) {
			t.Fatalf("event %d seq = %d, want %d", i, got[i].Seq, 5+i)
		}
	}
	if l.Total() != 7 || l.Evicted() != 4 {
		t.Fatalf("total=%d evicted=%d, want 7 and 4", l.Total(), l.Evicted())
	}
	if int(l.Total()) != l.Len()+int(l.Evicted()) {
		t.Fatalf("accounting broken: total=%d len=%d evicted=%d", l.Total(), l.Len(), l.Evicted())
	}
	if recent := l.Recent(2); len(recent) != 2 || recent[1].Query != "q7" {
		t.Fatalf("Recent(2) = %v", recent)
	}
}

// blockingWriter blocks every Write until released, simulating a slow
// JSONL destination.
type blockingWriter struct {
	release chan struct{}
	buf     bytes.Buffer
	mu      sync.Mutex
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *blockingWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestJSONLDropAccounting: with the writer stalled, recording never
// blocks; overflow beyond the queue is counted as dropped, and
// written + dropped (+ the one event stuck in the writer) == recorded.
func TestJSONLDropAccounting(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{})}
	l := NewLog(64)
	const queue = 4
	l.AttachJSONL(w, queue)

	// Wait until the writer goroutine has pulled one event off the queue
	// and is stuck in Write, so the queue capacity is deterministic.
	l.Record(Event{Kind: "request", Query: "stuck"})
	deadline := time.Now().Add(2 * time.Second)
	for len(l.sinkCh) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer goroutine never picked up the first event")
		}
		time.Sleep(time.Millisecond)
	}

	const total = 20
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i < total; i++ {
			l.Record(Event{Kind: "request", Query: fmt.Sprintf("q%d", i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Record blocked on a stalled JSONL writer")
	}

	close(w.release) // let the writer drain
	l.Close()

	if l.Total() != total {
		t.Fatalf("total = %d, want %d", l.Total(), total)
	}
	dropped := int(l.Dropped())
	if dropped != total-queue-1 {
		t.Fatalf("dropped = %d, want %d (queue depth %d plus the event in the writer)", dropped, total-queue-1, queue)
	}
	written := 0
	sc := bufio.NewScanner(strings.NewReader(w.String()))
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		written++
	}
	if written+dropped != total {
		t.Fatalf("written(%d) + dropped(%d) != recorded(%d)", written, dropped, total)
	}
	// The ring is unaffected by sink drops.
	if l.Len() != total {
		t.Fatalf("ring len = %d, want %d", l.Len(), total)
	}
}

// TestJSONLDrainOnClose: with a responsive writer every event reaches the
// stream in order.
func TestJSONLDrainOnClose(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog(8)
	l.AttachJSONL(&buf, 0)
	for i := 0; i < 5; i++ {
		l.Record(Event{Kind: "annotate", Outcome: OutcomeOK, Updated: i})
	}
	l.Close()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("wrote %d lines, want 5: %q", len(lines), buf.String())
	}
	var last Event
	if err := json.Unmarshal([]byte(lines[4]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Seq != 5 || last.Updated != 4 || last.Outcome != OutcomeOK {
		t.Fatalf("last event = %+v", last)
	}
	if l.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", l.Dropped())
	}
}

// TestFilter selects by outcome over the retained window.
func TestFilter(t *testing.T) {
	l := NewLog(16)
	for i := 0; i < 6; i++ {
		out := OutcomeGrant
		if i%2 == 0 {
			out = OutcomeDeny
		}
		l.Record(Event{Kind: "request", Outcome: out, Query: fmt.Sprintf("q%d", i)})
	}
	denies := l.Filter(0, func(e Event) bool { return e.Outcome == OutcomeDeny })
	if len(denies) != 3 || denies[2].Query != "q4" {
		t.Fatalf("denies = %+v", denies)
	}
	if got := l.Filter(1, func(e Event) bool { return e.Outcome == OutcomeDeny }); len(got) != 1 || got[0].Query != "q4" {
		t.Fatalf("Filter(1) = %+v", got)
	}
}

// TestNilLogNoops: a nil *Log is inert, so call sites need no checks.
func TestNilLogNoops(t *testing.T) {
	var l *Log
	l.Record(Event{Kind: "request"})
	if l.Recent(0) != nil || l.Len() != 0 || l.Total() != 0 || l.Evicted() != 0 || l.Dropped() != 0 {
		t.Fatal("nil log must no-op")
	}
}

// TestConcurrentRecord hammers Record/Recent/counters from many
// goroutines; run under -race via scripts/check.sh.
func TestConcurrentRecord(t *testing.T) {
	l := NewLog(32)
	var buf bytes.Buffer
	var bufMu sync.Mutex
	l.AttachJSONL(writerFunc(func(p []byte) (int, error) {
		bufMu.Lock()
		defer bufMu.Unlock()
		return buf.Write(p)
	}), 8)
	var wg sync.WaitGroup
	const writers, per = 8, 200
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Record(Event{Kind: "request", Query: fmt.Sprintf("g%d-%d", g, i)})
				if i%32 == 0 {
					_ = l.Recent(8)
					_ = l.Total()
				}
			}
		}(g)
	}
	wg.Wait()
	l.Close()
	if l.Total() != writers*per {
		t.Fatalf("total = %d, want %d", l.Total(), writers*per)
	}
	if int(l.Total()) != l.Len()+int(l.Evicted()) {
		t.Fatalf("accounting broken: total=%d len=%d evicted=%d", l.Total(), l.Len(), l.Evicted())
	}
	// Seqs in the ring are strictly increasing.
	events := l.Recent(0)
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("seq order broken at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
