package cam_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xmlac/internal/cam"
	"xmlac/internal/core"
	"xmlac/internal/hospital"
	"xmlac/internal/policy"
	"xmlac/internal/xmltree"
)

const hospitalPolicy = `
default deny
conflict deny
rule R1 allow //patient
rule R2 allow //patient/name
rule R3 deny //patient[treatment]
rule R5 deny //patient[.//experimental]
rule R6 allow //regular
`

func annotatedHospital(t *testing.T) (*xmltree.Document, map[int64]bool) {
	t.Helper()
	doc := hospital.Generate(hospital.GenOptions{Seed: 5, Departments: 2, PatientsPerDept: 25, StaffPerDept: 8})
	acc, err := policy.MustParse(hospitalPolicy).Semantics(doc)
	if err != nil {
		t.Fatal(err)
	}
	return doc, acc
}

func TestBuildAndLookupMatchDirect(t *testing.T) {
	doc, acc := annotatedHospital(t)
	m := cam.Build(doc, acc, false)
	doc.Walk(func(n *xmltree.Node) bool {
		if n.IsElement() {
			if got := m.Accessible(n); got != acc[n.ID] {
				t.Fatalf("node %d (%s): cam %v, direct %v", n.ID, n.Label, got, acc[n.ID])
			}
		}
		return true
	})
}

func TestCompression(t *testing.T) {
	doc, acc := annotatedHospital(t)
	m := cam.Build(doc, acc, false)
	if m.Size() == 0 {
		t.Fatal("map empty")
	}
	// Locality: the map must be smaller than one mark per element.
	if m.Size() >= doc.ElementCount() {
		t.Fatalf("no compression: %d marks for %d elements", m.Size(), doc.ElementCount())
	}
	t.Logf("%s for %d elements (%.1f%%)", m, doc.ElementCount(),
		100*float64(m.Size())/float64(doc.ElementCount()))
}

func TestUniformDocumentCompressesToNothing(t *testing.T) {
	doc, _ := xmltree.ParseString(`<a><b><c/></b><d/></a>`)
	// Everything accessible, default allow: zero marks.
	acc := map[int64]bool{}
	for _, n := range doc.Elements() {
		acc[n.ID] = true
	}
	m := cam.Build(doc, acc, true)
	if m.Size() != 0 {
		t.Fatalf("marks = %d, want 0", m.Size())
	}
	// Everything accessible, default deny: one mark at the root.
	m = cam.Build(doc, acc, false)
	if m.Size() != 1 {
		t.Fatalf("marks = %d, want 1", m.Size())
	}
}

func TestFromSignsAndApplyRoundTrip(t *testing.T) {
	doc, acc := annotatedHospital(t)
	// Materialize signs the way the native annotator would (explicit '+'
	// only, default deny).
	for _, n := range doc.Elements() {
		if acc[n.ID] {
			n.Sign = xmltree.SignPlus
		}
	}
	m := cam.FromSigns(doc, false)
	// Apply to a fresh clone and compare accessibility everywhere.
	clone := doc.Clone()
	clone.ClearSigns()
	m.Apply(clone)
	for _, n := range clone.Elements() {
		want := acc[n.ID]
		got := n.Sign == xmltree.SignPlus
		if got != want {
			t.Fatalf("node %d: applied %v, want %v", n.ID, got, want)
		}
	}
}

func TestAccessibleIDsMatchesInput(t *testing.T) {
	doc, acc := annotatedHospital(t)
	m := cam.Build(doc, acc, false)
	got := m.AccessibleIDs(doc)
	if len(got) != len(acc) {
		t.Fatalf("expanded %d ids, want %d", len(got), len(acc))
	}
	for id := range acc {
		if !got[id] {
			t.Fatalf("id %d lost", id)
		}
	}
}

func TestCamAgainstSystemAnnotation(t *testing.T) {
	sys, err := core.NewSystem(core.Config{
		Schema:   hospital.Schema(),
		Policy:   policy.MustParse(hospitalPolicy),
		Backend:  core.BackendNative,
		Optimize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := hospital.Generate(hospital.GenOptions{Seed: 9, Departments: 1, PatientsPerDept: 30})
	if err := sys.Load(doc); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Annotate(); err != nil {
		t.Fatal(err)
	}
	ids, err := sys.AccessibleIDs()
	if err != nil {
		t.Fatal(err)
	}
	m := cam.FromSigns(sys.Document(), false)
	got := m.AccessibleIDs(sys.Document())
	if len(got) != len(ids) {
		t.Fatalf("cam %d vs system %d", len(got), len(ids))
	}
}

// TestQuickCamRoundTrip: for random trees and random accessibility
// assignments, Build + Accessible reproduces the input exactly, and the
// mark count never exceeds the number of elements.
func TestQuickCamRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		labels := []string{"a", "b", "c"}
		doc := xmltree.NewDocument("root")
		nodes := []*xmltree.Node{doc.Root()}
		for i := 0; i < r.Intn(40); i++ {
			p := nodes[r.Intn(len(nodes))]
			nodes = append(nodes, doc.AddElement(p, labels[r.Intn(len(labels))]))
		}
		acc := map[int64]bool{}
		for _, n := range nodes {
			if r.Intn(2) == 0 {
				acc[n.ID] = true
			}
		}
		def := r.Intn(2) == 0
		m := cam.Build(doc, acc, def)
		if m.Size() > len(nodes) {
			return false
		}
		for _, n := range nodes {
			if m.Accessible(n) != acc[n.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
