// Package cam implements a compressed accessibility map in the spirit of
// Yu, Srivastava, Lakshmanan and Jagadish ("A compressed accessibility map
// for XML", TODS 2004) — reference [26] of the reproduced paper, which
// names it as the more sophisticated technique for *storing* annotations
// that its own materialized per-node signs deliberately avoid.
//
// The map exploits accessibility locality: real policies tend to grant or
// deny whole regions, so instead of one sign per node the map stores only
// the nodes where accessibility *changes* relative to the nearest marked
// ancestor, plus a default at the (virtual) root. Lookup walks to the
// nearest marked ancestor-or-self — O(depth) — and the map's size is
// proportional to the policy's "fragmentation", not the document's size.
//
// The package interoperates with the rest of the system: a map can be built
// from any accessible-id set (e.g. core.System.AccessibleIDs or the
// brute-force policy semantics) or harvested from a document's materialized
// signs, and can be materialized back onto a document. The ablation
// benchmarks compare its size and lookup cost against the paper's direct
// representation.
package cam

import (
	"fmt"

	"xmlac/internal/xmltree"
)

// Map is a compressed accessibility map for one document.
type Map struct {
	// def is the accessibility inherited at the document root.
	def bool
	// marks holds the nodes whose accessibility differs from what they
	// would inherit; the value is their (and their unmarked descendants')
	// accessibility.
	marks map[int64]bool
}

// Build constructs the minimal subtree-inheritance encoding of an
// accessible-node set: a node is marked iff its accessibility differs from
// its nearest marked proper ancestor (or from defaultAccessible at the
// root). Text nodes inherit their parent's accessibility and are never
// marked.
func Build(doc *xmltree.Document, accessible map[int64]bool, defaultAccessible bool) *Map {
	m := &Map{def: defaultAccessible, marks: map[int64]bool{}}
	var walk func(n *xmltree.Node, inherited bool)
	walk = func(n *xmltree.Node, inherited bool) {
		cur := inherited
		if n.IsElement() {
			acc := accessible[n.ID]
			if acc != inherited {
				m.marks[n.ID] = acc
			}
			cur = acc
		}
		for _, c := range n.Children() {
			walk(c, cur)
		}
	}
	walk(doc.Root(), defaultAccessible)
	return m
}

// FromSigns harvests a map from a document's materialized sign annotations,
// interpreting unannotated nodes per the given default — the bridge from
// the paper's representation to the compressed one.
func FromSigns(doc *xmltree.Document, defaultAccessible bool) *Map {
	accessible := map[int64]bool{}
	doc.Walk(func(n *xmltree.Node) bool {
		if !n.IsElement() {
			return true
		}
		switch n.Sign {
		case xmltree.SignPlus:
			accessible[n.ID] = true
		case xmltree.SignMinus:
			// explicit deny
		default:
			if defaultAccessible {
				accessible[n.ID] = true
			}
		}
		return true
	})
	return Build(doc, accessible, defaultAccessible)
}

// Accessible reports the node's accessibility: the value at the nearest
// marked ancestor-or-self, or the default when none is marked.
func (m *Map) Accessible(n *xmltree.Node) bool {
	for cur := n; cur != nil; cur = cur.Parent() {
		if v, ok := m.marks[cur.ID]; ok {
			return v
		}
	}
	return m.def
}

// Size returns the number of stored marks — the compression metric.
func (m *Map) Size() int { return len(m.marks) }

// Default returns the root-inherited accessibility.
func (m *Map) Default() bool { return m.def }

// Apply materializes the map back onto the document's sign annotations
// (every element gets an explicit sign), for verification and export.
func (m *Map) Apply(doc *xmltree.Document) {
	var walk func(n *xmltree.Node, inherited bool)
	walk = func(n *xmltree.Node, inherited bool) {
		cur := inherited
		if n.IsElement() {
			if v, ok := m.marks[n.ID]; ok {
				cur = v
			}
			if cur {
				n.Sign = xmltree.SignPlus
			} else {
				n.Sign = xmltree.SignMinus
			}
		}
		for _, c := range n.Children() {
			walk(c, cur)
		}
	}
	walk(doc.Root(), m.def)
}

// AccessibleIDs expands the map to the full accessible element-id set.
func (m *Map) AccessibleIDs(doc *xmltree.Document) map[int64]bool {
	out := map[int64]bool{}
	var walk func(n *xmltree.Node, inherited bool)
	walk = func(n *xmltree.Node, inherited bool) {
		cur := inherited
		if n.IsElement() {
			if v, ok := m.marks[n.ID]; ok {
				cur = v
			}
			if cur {
				out[n.ID] = true
			}
		}
		for _, c := range n.Children() {
			walk(c, cur)
		}
	}
	walk(doc.Root(), m.def)
	return out
}

// String summarizes the map.
func (m *Map) String() string {
	d := "-"
	if m.def {
		d = "+"
	}
	return fmt.Sprintf("cam{default %s, %d marks}", d, len(m.marks))
}
