// Package obs is the zero-dependency observability layer of the
// reproduction: hierarchical trace spans, a metrics registry (counters,
// gauges, fixed-bucket latency histograms) and a pluggable sink, so the
// per-phase timings the evaluation figures aggregate (parse vs plan vs
// join vs UPDATE, trigger selection vs scope re-annotation) can be
// attributed instead of folded into one wall-clock number.
//
// Everything degrades to a no-op on nil receivers: a nil *Tracer starts
// nil spans, and every method on a nil *Span, *Counter, *Gauge or
// *Histogram returns immediately, so instrumented code pays only a nil
// check when observation is disabled.
//
// # Trace propagation
//
// Every root span carries a process-unique TraceID shared by all of its
// descendants, and each span a SpanID. ContextWithSpan/FromContext carry
// the current span across API boundaries (engine calls, catalog shard
// fan-out, pool tasks), so one logical operation spread over goroutines
// still forms a single connected tree, and the trace ID stamped on audit
// events correlates decisions with their traces.
//
// # Collector ring semantics
//
// Collector retains the most recent root spans in a bounded ring: Emit
// appends until the capacity is reached, then each further Emit
// overwrites the oldest retained root and increments the Evicted
// counter. Roots returns the retained spans oldest-first, Len the number
// currently retained, and Reset drops all retained spans and zeroes the
// eviction counter while keeping the capacity.
package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one trace: a root span and every descendant share
// it. The zero value means "no trace" (nil/no-op spans).
type TraceID uint64

// SpanID identifies one span within a trace. The zero value means "no
// span".
type SpanID uint64

// String renders the id as 16 lowercase hex digits ("" for the zero id),
// the form used on /traces, /audit and the dashboard.
func (t TraceID) String() string {
	if t == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", uint64(t))
}

// String renders the id as 16 lowercase hex digits ("" for the zero id).
func (s SpanID) String() string {
	if s == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", uint64(s))
}

// idState seeds id generation once per process so ids from different
// runs don't collide in aggregated logs; newID then walks a splitmix64
// sequence from it, which is cheap, lock-free and never yields zero
// twice in any realistic horizon.
var idState atomic.Uint64

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

func newID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15) // splitmix64 increment
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 { // zero is reserved for "no id"
			return x
		}
	}
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed region of work. Spans form a tree: children are
// created with Start and every span is closed exactly once with Finish
// (later Finishes are no-ops). A finished root span is delivered to the
// tracer's sink.
type Span struct {
	// Identity is fixed at creation and read without the lock: traceID is
	// shared with every descendant, parentID is zero on roots.
	traceID  TraceID
	spanID   SpanID
	parentID SpanID

	mu       sync.Mutex
	name     string
	start    time.Time
	duration time.Duration
	attrs    []Attr
	children []*Span
	finished bool
	sink     Sink // set on root spans only
}

// Tracer creates root spans and routes them to a sink when finished. A
// nil tracer is valid and produces nil (no-op) spans.
type Tracer struct {
	sink Sink
}

// NewTracer returns a tracer delivering finished root spans to sink.
func NewTracer(sink Sink) *Tracer { return &Tracer{sink: sink} }

// Start begins a root span with a fresh trace id. Returns nil (a no-op
// span) on a nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		traceID: TraceID(newID()),
		spanID:  SpanID(newID()),
		name:    name,
		start:   time.Now(),
		sink:    t.sink,
	}
}

// Start begins a child span under parent, inheriting its trace id. A nil
// parent yields a nil (no-op) span, so instrumented code needs no
// enabled-checks.
func Start(parent *Span, name string) *Span {
	if parent == nil {
		return nil
	}
	child := &Span{
		traceID:  parent.traceID,
		spanID:   SpanID(newID()),
		parentID: parent.spanID,
		name:     name,
		start:    time.Now(),
	}
	parent.mu.Lock()
	parent.children = append(parent.children, child)
	parent.mu.Unlock()
	return child
}

// spanCtxKey keys the current span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s as the current span. A
// nil span returns ctx unchanged, so disabled tracing threads no value.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// FromContext returns the current span carried by ctx, or nil when none
// (including a nil ctx). The result feeds Start directly: a nil span
// yields nil no-op children.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartCtx begins a child span under the context's current span and
// returns it together with a derived context carrying the child. With no
// span in ctx both the span and the context pass through untouched.
func StartCtx(ctx context.Context, name string) (*Span, context.Context) {
	sp := Start(FromContext(ctx), name)
	if sp == nil {
		return nil, ctx
	}
	return sp, ContextWithSpan(ctx, sp)
}

// SetAttr records a key/value annotation and returns the span for
// chaining. No-op on nil.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
	return s
}

// Finish closes the span and returns its duration. The first call wins:
// finishing twice neither restarts the clock nor re-emits to the sink.
func (s *Span) Finish() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	var sink Sink
	if !s.finished {
		s.finished = true
		s.duration = time.Since(s.start)
		sink = s.sink
	}
	d := s.duration
	s.mu.Unlock()
	if sink != nil {
		sink.Emit(s)
	}
	return d
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceID returns the trace id shared by the span's whole tree (zero on
// nil). Identity is immutable after creation, so no lock is taken.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.traceID
}

// SpanID returns the span's own id (zero on nil).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return 0
	}
	return s.spanID
}

// ParentID returns the parent span's id (zero on nil and on roots).
func (s *Span) ParentID() SpanID {
	if s == nil {
		return 0
	}
	return s.parentID
}

// StartTime returns when the span was started (zero on nil).
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start
}

// Duration returns the finished duration (elapsed time when still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.finished {
		return time.Since(s.start)
	}
	return s.duration
}

// Finished reports whether Finish has been called.
func (s *Span) Finished() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finished
}

// Children returns the direct child spans, in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attrs returns the recorded attributes, in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns the value of the named attribute, or nil.
func (s *Span) Attr(key string) any {
	for _, a := range s.Attrs() {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// Child returns the first direct child with the given name, or nil.
func (s *Span) Child(name string) *Span {
	for _, c := range s.Children() {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// Render writes the span tree in a box-drawing layout:
//
//	annotate 12.3ms updated=37 reset=420
//	├─ reset-signs 2.1ms
//	└─ apply-updates 9.9ms
func (s *Span) Render(w io.Writer) {
	if s == nil {
		return
	}
	renderSpan(w, s, "", "")
}

// Tree returns Render's output as a string.
func (s *Span) Tree() string {
	var b strings.Builder
	s.Render(&b)
	return b.String()
}

func renderSpan(w io.Writer, s *Span, prefix, childPrefix string) {
	fmt.Fprintf(w, "%s%s %s", prefix, s.Name(), fmtDuration(s.Duration()))
	for _, a := range s.Attrs() {
		fmt.Fprintf(w, " %s=%v", a.Key, a.Value)
	}
	// Roots carry the trace id so rendered trees (-trace, /traces) can be
	// joined with the audit log's trace field.
	if s.ParentID() == 0 && s.TraceID() != 0 {
		fmt.Fprintf(w, " trace=%s", s.TraceID())
	}
	fmt.Fprintln(w)
	children := s.Children()
	for i, c := range children {
		if i == len(children)-1 {
			renderSpan(w, c, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			renderSpan(w, c, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Sink receives finished root spans.
type Sink interface {
	Emit(root *Span)
}

// DefaultCollectorCap bounds a zero-value Collector: a long-lived server
// emitting one root span per request must not grow without bound.
const DefaultCollectorCap = 256

// Collector is a Sink retaining the most recent root spans in a bounded
// ring: once full, each Emit evicts the oldest root. The zero value is
// ready to use with DefaultCollectorCap; NewCollector picks the bound.
type Collector struct {
	mu      sync.Mutex
	roots   []*Span // ring storage, at most capN entries
	next    int     // index of the oldest entry once len(roots) == capN
	capN    int     // bound; 0 until first use of a zero value
	evicted uint64
}

// NewCollector returns a collector retaining the most recent capacity
// roots (DefaultCollectorCap when capacity <= 0).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCollectorCap
	}
	return &Collector{capN: capacity}
}

// Emit implements Sink, evicting the oldest retained root when full.
func (c *Collector) Emit(root *Span) {
	c.mu.Lock()
	if c.capN == 0 {
		c.capN = DefaultCollectorCap
	}
	if len(c.roots) < c.capN {
		c.roots = append(c.roots, root)
	} else {
		c.roots[c.next] = root
		c.next = (c.next + 1) % c.capN
		c.evicted++
	}
	c.mu.Unlock()
}

// Roots returns the retained root spans in emission order, oldest first.
func (c *Collector) Roots() []*Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Span, 0, len(c.roots))
	out = append(out, c.roots[c.next:]...)
	return append(out, c.roots[:c.next]...)
}

// Evicted returns how many roots the ring has overwritten.
func (c *Collector) Evicted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}

// Len returns how many roots are currently retained.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.roots)
}

// Root returns the most recently emitted root with the given name, or nil.
func (c *Collector) Root(name string) *Span {
	roots := c.Roots()
	for i := len(roots) - 1; i >= 0; i-- {
		if roots[i].Name() == name {
			return roots[i]
		}
	}
	return nil
}

// Reset drops all collected spans and zeroes the eviction counter (the
// capacity is kept), returning the ring to its initial state.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.roots = nil
	c.next = 0
	c.evicted = 0
	c.mu.Unlock()
}

// RenderSink is a Sink that renders each finished root span tree to W —
// the `xmlac -trace` output.
type RenderSink struct {
	mu sync.Mutex
	W  io.Writer
}

// Emit implements Sink.
func (p *RenderSink) Emit(root *Span) {
	p.mu.Lock()
	defer p.mu.Unlock()
	root.Render(p.W)
}

// Phase is one named stage of a pipeline operation with its duration —
// the flat counterpart of a span, carried on result statistics so a
// breakdown is available even when tracing is off.
type Phase struct {
	Name     string
	Duration time.Duration
}

// Phases is an ordered phase breakdown.
type Phases []Phase

// Add appends a phase.
func (ps *Phases) Add(name string, d time.Duration) {
	*ps = append(*ps, Phase{Name: name, Duration: d})
}

// Total sums all phase durations.
func (ps Phases) Total() time.Duration {
	var t time.Duration
	for _, p := range ps {
		t += p.Duration
	}
	return t
}

// Get returns the summed duration of the named phase and whether it
// occurred.
func (ps Phases) Get(name string) (time.Duration, bool) {
	var t time.Duration
	found := false
	for _, p := range ps {
		if p.Name == name {
			t += p.Duration
			found = true
		}
	}
	return t, found
}

// Names lists the phase names in order, deduplicated.
func (ps Phases) Names() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range ps {
		if !seen[p.Name] {
			seen[p.Name] = true
			out = append(out, p.Name)
		}
	}
	return out
}

// String renders "name=dur name=dur …".
func (ps Phases) String() string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.Name + "=" + fmtDuration(p.Duration)
	}
	return strings.Join(parts, " ")
}

// sortedKeys is shared by the exposition formats.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
