package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeStructure(t *testing.T) {
	var sink Collector
	tr := NewTracer(&sink)

	root := tr.Start("annotate")
	root.SetAttr("backend", "pgsim")
	a := Start(root, "reset-signs")
	a.SetAttr("rows", 42)
	a.Finish()
	b := Start(root, "apply-updates")
	c := Start(b, "update-table")
	c.Finish()
	b.Finish()
	root.Finish()

	roots := sink.Roots()
	if len(roots) != 1 {
		t.Fatalf("collected %d roots, want 1", len(roots))
	}
	got := roots[0]
	if got.Name() != "annotate" {
		t.Fatalf("root name = %q", got.Name())
	}
	if v := got.Attr("backend"); v != "pgsim" {
		t.Fatalf("root attr backend = %v", v)
	}
	kids := got.Children()
	if len(kids) != 2 || kids[0].Name() != "reset-signs" || kids[1].Name() != "apply-updates" {
		t.Fatalf("children = %v", kids)
	}
	if v := kids[0].Attr("rows"); v != 42 {
		t.Fatalf("reset-signs attr rows = %v", v)
	}
	if sub := kids[1].Child("update-table"); sub == nil || !sub.Finished() {
		t.Fatalf("nested child missing or unfinished: %v", sub)
	}
	tree := got.Tree()
	for _, want := range []string{"annotate", "├─ reset-signs", "└─ apply-updates", "   └─ update-table"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree output missing %q:\n%s", want, tree)
		}
	}
}

func TestSpanDoubleFinish(t *testing.T) {
	var sink Collector
	tr := NewTracer(&sink)
	sp := tr.Start("op")
	d1 := sp.Finish()
	time.Sleep(2 * time.Millisecond)
	d2 := sp.Finish()
	if d1 != d2 {
		t.Fatalf("second Finish changed duration: %v → %v", d1, d2)
	}
	if n := len(sink.Roots()); n != 1 {
		t.Fatalf("double Finish emitted %d times, want 1", n)
	}
}

func TestNilSpanAndTracerAreNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	// None of these may panic.
	child := Start(sp, "y")
	child.SetAttr("k", "v").Finish()
	sp.Finish()
	if sp.Tree() != "" || sp.Name() != "" || sp.Duration() != 0 {
		t.Fatal("nil span is not inert")
	}
}

func TestPhases(t *testing.T) {
	var ps Phases
	ps.Add("parse", 2*time.Millisecond)
	ps.Add("exec", 3*time.Millisecond)
	ps.Add("parse", 1*time.Millisecond)
	if ps.Total() != 6*time.Millisecond {
		t.Fatalf("Total = %v", ps.Total())
	}
	if d, ok := ps.Get("parse"); !ok || d != 3*time.Millisecond {
		t.Fatalf("Get(parse) = %v, %v", d, ok)
	}
	if _, ok := ps.Get("missing"); ok {
		t.Fatal("Get(missing) found")
	}
	names := ps.Names()
	if len(names) != 2 || names[0] != "parse" || names[1] != "exec" {
		t.Fatalf("Names = %v", names)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", 0.001, 0.01, 0.1)
	// Exactly on a bound counts into that bucket (le semantics);
	// just above it spills into the next.
	h.Observe(0.001)
	h.Observe(0.0011)
	h.Observe(0.05)
	h.Observe(5) // overflow → +Inf only
	s := r.Snapshot().Histograms["lat_seconds"]
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	wantCum := []uint64{1, 2, 3, 4} // le=0.001, 0.01, 0.1, +Inf
	if len(s.Buckets) != 4 {
		t.Fatalf("bucket count = %d, want 4", len(s.Buckets))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d (le=%g): count %d, want %d", i, b.UpperBound, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Errorf("last bucket bound = %g, want +Inf", s.Buckets[3].UpperBound)
	}
	if got := s.Sum; math.Abs(got-5.0521) > 1e-9 {
		t.Errorf("sum = %g", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("sqldb_statements_total").Add(7)
	r.Gauge("coverage_ratio").Set(0.25)
	h := r.Histogram("sqldb_exec_seconds", 0.01, 0.1)
	h.Observe(0.005)
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := strings.Join([]string{
		"# TYPE sqldb_statements_total counter",
		"sqldb_statements_total 7",
		"# TYPE coverage_ratio gauge",
		"coverage_ratio 0.25",
		"# TYPE sqldb_exec_seconds histogram",
		`sqldb_exec_seconds_bucket{le="0.01"} 1`,
		`sqldb_exec_seconds_bucket{le="0.1"} 1`,
		`sqldb_exec_seconds_bucket{le="+Inf"} 2`,
		"sqldb_exec_seconds_sum 0.505",
		"sqldb_exec_seconds_count 2",
		"# TYPE sqldb_exec_seconds_p50 gauge",
		"sqldb_exec_seconds_p50 0.01",
		"# TYPE sqldb_exec_seconds_p95 gauge",
		"sqldb_exec_seconds_p95 0.1",
		"# TYPE sqldb_exec_seconds_p99 gauge",
		"sqldb_exec_seconds_p99 0.1",
		"",
	}, "\n")
	if got != want {
		t.Errorf("prometheus text:\n%s\nwant:\n%s", got, want)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(1)
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistryJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Add(3)
	r.Histogram("h", 0.1, 1).Observe(5) // lands in the +Inf bucket
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"n": 3`) {
		t.Errorf("JSON missing counter: %s", b.String())
	}
	if !strings.Contains(b.String(), `"le": "+Inf"`) {
		t.Errorf("JSON missing +Inf bucket: %s", b.String())
	}
}

// TestCollectorRingEviction: the collector retains the newest capN roots,
// Roots stays in emission order across the wrap, and eviction is counted.
func TestCollectorRingEviction(t *testing.T) {
	tr := NewTracer(NewCollector(3))
	for i := 0; i < 5; i++ {
		tr.Start("op" + string(rune('0'+i))).Finish()
	}
	col := tr.sink.(*Collector)
	roots := col.Roots()
	if len(roots) != 3 {
		t.Fatalf("len = %d, want 3", len(roots))
	}
	for i, want := range []string{"op2", "op3", "op4"} {
		if roots[i].Name() != want {
			t.Fatalf("roots[%d] = %s, want %s (oldest-first order)", i, roots[i].Name(), want)
		}
	}
	if col.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", col.Evicted())
	}
	if got := col.Root("op4"); got == nil || got.Name() != "op4" {
		t.Fatalf("Root(op4) = %v", got)
	}
	if got := col.Root("op0"); got != nil {
		t.Fatal("evicted root still addressable")
	}
	col.Reset()
	if len(col.Roots()) != 0 {
		t.Fatal("Reset left roots behind")
	}
	tr.Start("after").Finish()
	if got := col.Roots(); len(got) != 1 || got[0].Name() != "after" {
		t.Fatalf("post-Reset roots = %v", got)
	}
}

// TestCollectorZeroValueBounded: the zero value keeps working as a sink
// and self-bounds at DefaultCollectorCap.
func TestCollectorZeroValueBounded(t *testing.T) {
	col := &Collector{}
	tr := NewTracer(col)
	for i := 0; i < DefaultCollectorCap+10; i++ {
		tr.Start("op").Finish()
	}
	if got := len(col.Roots()); got != DefaultCollectorCap {
		t.Fatalf("len = %d, want %d", got, DefaultCollectorCap)
	}
	if col.Evicted() != 10 {
		t.Fatalf("evicted = %d, want 10", col.Evicted())
	}
}
