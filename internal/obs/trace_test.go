package obs

import (
	"context"
	"sync"
	"testing"
)

func TestTraceIdentityPropagation(t *testing.T) {
	tr := NewTracer(NewCollector(4))
	root := tr.Start("request")
	if root.TraceID() == 0 || root.SpanID() == 0 {
		t.Fatal("root span missing identity")
	}
	if root.ParentID() != 0 {
		t.Fatalf("root has a parent id %v", root.ParentID())
	}
	child := Start(root, "shard")
	grand := Start(child, "eval-query")
	for _, s := range []*Span{child, grand} {
		if s.TraceID() != root.TraceID() {
			t.Errorf("%s trace id %v, want root's %v", s.Name(), s.TraceID(), root.TraceID())
		}
	}
	if child.ParentID() != root.SpanID() || grand.ParentID() != child.SpanID() {
		t.Error("parent ids do not chain")
	}
	ids := map[SpanID]bool{root.SpanID(): true, child.SpanID(): true, grand.SpanID(): true}
	if len(ids) != 3 {
		t.Fatalf("span ids collide: %v", ids)
	}
	second := tr.Start("request")
	if second.TraceID() == root.TraceID() {
		t.Fatal("distinct roots share a trace id")
	}
}

func TestTraceIDString(t *testing.T) {
	if TraceID(0).String() != "" || SpanID(0).String() != "" {
		t.Fatal("zero ids must render empty")
	}
	if got := TraceID(0xabc).String(); got != "0000000000000abc" {
		t.Fatalf("TraceID.String = %q", got)
	}
	if len(TraceID(newID()).String()) != 16 {
		t.Fatal("trace ids must render as 16 hex digits")
	}
}

func TestContextCarrier(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context carries a span")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil ctx tolerated by design
		t.Fatal("nil context carries a span")
	}
	tr := NewTracer(nil)
	root := tr.Start("op")
	ctx := ContextWithSpan(context.Background(), root)
	if FromContext(ctx) != root {
		t.Fatal("context does not return the stored span")
	}
	// A nil span threads no value.
	if ctx2 := ContextWithSpan(context.Background(), nil); FromContext(ctx2) != nil {
		t.Fatal("nil span was stored in context")
	}
	// StartCtx derives a child and re-carries it.
	sp, ctx3 := StartCtx(ctx, "child")
	if sp == nil || sp.ParentID() != root.SpanID() {
		t.Fatalf("StartCtx child = %v", sp)
	}
	if FromContext(ctx3) != sp {
		t.Fatal("StartCtx context does not carry the child")
	}
	// With no span in ctx, StartCtx passes through untouched.
	sp2, ctx4 := StartCtx(context.Background(), "orphan")
	if sp2 != nil || FromContext(ctx4) != nil {
		t.Fatal("StartCtx on a bare context created a span")
	}
}

// TestConcurrentChildSpans hammers child creation on one parent from many
// goroutines; run under -race this guards the span tree's locking.
func TestConcurrentChildSpans(t *testing.T) {
	tr := NewTracer(NewCollector(1))
	root := tr.Start("fan-out")
	const workers, perWorker = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := ContextWithSpan(context.Background(), root)
			for i := 0; i < perWorker; i++ {
				sp, c := StartCtx(ctx, "task")
				grand, _ := StartCtx(c, "step")
				grand.SetAttr("i", i).Finish()
				sp.Finish()
			}
		}()
	}
	wg.Wait()
	root.Finish()
	if got := len(root.Children()); got != workers*perWorker {
		t.Fatalf("children = %d, want %d", got, workers*perWorker)
	}
	for _, c := range root.Children() {
		if c.TraceID() != root.TraceID() {
			t.Fatal("child escaped the trace")
		}
	}
}
