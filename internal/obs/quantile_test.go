package obs

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_seconds", 0.01, 0.1)
	s := r.Snapshot().Histograms["empty_seconds"]
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(p); got != 0 {
			t.Errorf("Quantile(%g) on empty histogram = %g, want 0", p, got)
		}
	}
	if s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot quantiles = %g/%g/%g, want zeros", s.P50, s.P95, s.P99)
	}
	// Empty histograms are left out of the derived quantile gauges.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "empty_seconds_p50") {
		t.Errorf("empty histogram emitted a quantile gauge:\n%s", b.String())
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("one_seconds", 1.0) // buckets: le=1, +Inf
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	s := r.Snapshot().Histograms["one_seconds"]
	// All samples sit in [0,1]; interpolation walks that range linearly.
	if got := s.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p50 = %g, want 0.5", got)
	}
	if got := s.Quantile(1); math.Abs(got-1) > 1e-9 {
		t.Errorf("p100 = %g, want 1", got)
	}
}

func TestHistogramQuantileInfBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inf_seconds", 0.01, 0.1)
	h.Observe(5) // only the +Inf bucket is occupied
	h.Observe(7)
	s := r.Snapshot().Histograms["inf_seconds"]
	// The histogram cannot resolve beyond its highest finite bound.
	for _, p := range []float64{0.5, 0.99, 1} {
		if got := s.Quantile(p); got != 0.1 {
			t.Errorf("Quantile(%g) = %g, want highest finite bound 0.1", p, got)
		}
	}
}

func TestHistogramQuantileExtremes(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", 0.01, 0.1, 1)
	h.Observe(0.05) // (0.01, 0.1]
	h.Observe(0.06)
	h.Observe(0.5) // (0.1, 1]
	s := r.Snapshot().Histograms["x_seconds"]
	// p=0 reports the lower edge of the first occupied bucket.
	if got := s.Quantile(0); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("p0 = %g, want 0.01", got)
	}
	// p=1 reports the upper bound of the last occupied bucket.
	if got := s.Quantile(1); math.Abs(got-1) > 1e-9 {
		t.Errorf("p100 = %g, want 1", got)
	}
	// Out-of-range p clamps instead of extrapolating.
	if s.Quantile(-3) != s.Quantile(0) || s.Quantile(7) != s.Quantile(1) {
		t.Error("out-of-range p did not clamp")
	}
	// Interior quantile interpolates within the owning bucket:
	// rank(0.5)=1.5 of 3 → halfway through the 2-sample (0.01,0.1] bucket.
	want := 0.01 + (0.1-0.01)*(1.5/2)
	if got := s.Quantile(0.5); math.Abs(got-want) > 1e-9 {
		t.Errorf("p50 = %g, want %g", got, want)
	}
}

func TestHistogramQuantileAllZeroCounts(t *testing.T) {
	// A snapshot whose buckets all hold zero is the empty case even when
	// the bucket list is fully materialized.
	s := HistogramSnapshot{Buckets: []BucketCount{
		{UpperBound: 0.01}, {UpperBound: 0.1}, {UpperBound: math.Inf(1)},
	}}
	for _, p := range []float64{0, 0.5, 1} {
		if got := s.Quantile(p); got != 0 {
			t.Errorf("Quantile(%g) over all-zero buckets = %g, want 0", p, got)
		}
	}
	// A corrupt snapshot (Count > 0 but no bucket reaches the rank) must
	// degrade to the last finite lower edge instead of panicking.
	s.Count = 5
	if got := s.Quantile(0.9); got != 0.1 {
		t.Errorf("Quantile on rankless snapshot = %g, want 0.1", got)
	}
}

func TestLabeledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram(`req_seconds{engine="row"}`, 0.1).Observe(0.05)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	// The inline label set is spliced next to le, never after the brace.
	for _, want := range []string{
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{engine="row",le="0.1"} 1`,
		`req_seconds_sum{engine="row"} 0.05`,
		`req_seconds_count{engine="row"} 1`,
		"# TYPE req_seconds_p50 gauge",
		`req_seconds_p50{engine="row"} 0.05`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, `}_`) {
		t.Errorf("suffix hung after a closing label brace:\n%s", got)
	}
}

func TestRegistryLegacyNames(t *testing.T) {
	r := NewRegistry()
	if !r.LegacyNames() {
		t.Fatal("legacy names should default on")
	}
	mc := r.CounterAliased("store_queries_total", "sqldb_statements_total")
	mc.Add(3)
	s := r.Snapshot()
	if s.Counters["store_queries_total"] != 3 || s.Counters["sqldb_statements_total"] != 3 {
		t.Fatalf("dual-write failed: %v", s.Counters)
	}

	r2 := NewRegistry()
	r2.SetLegacyNames(false)
	mc2 := r2.CounterAliased("store_queries_total", "sqldb_statements_total")
	mc2.Inc()
	s2 := r2.Snapshot()
	if s2.Counters["store_queries_total"] != 1 {
		t.Fatalf("canonical counter missing: %v", s2.Counters)
	}
	if _, ok := s2.Counters["sqldb_statements_total"]; ok {
		t.Fatalf("legacy alias written despite opt-out: %v", s2.Counters)
	}

	var nilReg *Registry
	nilReg.SetLegacyNames(true)
	if nilReg.LegacyNames() {
		t.Fatal("nil registry reports legacy names on")
	}
	nilReg.CounterAliased("a", "b").Inc() // must not panic
}
