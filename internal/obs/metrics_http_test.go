package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServeHTTPNegotiation: Prometheus text by default, JSON via
// ?format=json or an Accept header; an explicit format wins over Accept.
func TestServeHTTPNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total").Add(7)

	get := func(target, accept string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", target, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		reg.ServeHTTP(rec, req)
		return rec
	}

	rec := get("/metrics", "")
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Fatalf("default Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "requests_total 7") {
		t.Fatalf("Prometheus body = %q", rec.Body.String())
	}

	for _, c := range []struct{ target, accept string }{
		{"/metrics?format=json", ""},
		{"/metrics", "application/json"},
		{"/metrics", "text/html, application/json;q=0.9"},
	} {
		rec := get(c.target, c.accept)
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s Accept=%q: Content-Type = %q", c.target, c.accept, ct)
		}
		var snap Snapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("%s: invalid JSON: %v", c.target, err)
		}
		if snap.Counters["requests_total"] != 7 {
			t.Fatalf("%s: counters = %v", c.target, snap.Counters)
		}
	}

	// An explicit text format beats an Accept asking for JSON.
	rec = get("/metrics?format=text", "application/json")
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Fatalf("format=text Content-Type = %q", ct)
	}
}
