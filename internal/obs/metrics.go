package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. Nil counters no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// MultiCounter fans every increment out to a set of counters — the
// aliasing device that keeps a legacy metric name (sqldb_*, nativedb_*)
// ticking next to its backend-neutral store_* replacement. A nil or empty
// MultiCounter no-ops, like a nil *Counter.
type MultiCounter []*Counter

// Add adds n to every aliased counter.
func (m MultiCounter) Add(n int64) {
	for _, c := range m {
		c.Add(n)
	}
}

// Inc adds 1 to every aliased counter.
func (m MultiCounter) Inc() { m.Add(1) }

// Gauge is a metric that can go up and down. Nil gauges no-op.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultLatencyBuckets are the fixed histogram bucket upper bounds in
// seconds, spanning the microsecond statements of the SQL engine up to
// whole-run annotation times.
var DefaultLatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// Histogram is a fixed-bucket latency histogram (cumulative counts,
// Prometheus-style). Nil histograms no-op.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds
	counts []uint64  // len(bounds)+1, last bucket is +Inf
	count  uint64
	sum    float64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Buckets holds cumulative counts per upper bound; the final entry is
	// the +Inf bucket and equals Count.
	Buckets []BucketCount `json:"buckets"`
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// MarshalJSON renders the upper bound as a string so the final +Inf
// bucket survives encoding/json (which rejects infinite float values).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := formatFloat(b.UpperBound)
	if math.IsInf(b.UpperBound, 1) {
		le = "+Inf"
	}
	return json.Marshal(struct {
		UpperBound string `json:"le"`
		Count      uint64 `json:"count"`
	}{le, b.Count})
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		s.Buckets = append(s.Buckets, BucketCount{UpperBound: b, Count: cum})
	}
	cum += h.counts[len(h.bounds)]
	s.Buckets = append(s.Buckets, BucketCount{UpperBound: math.Inf(1), Count: cum})
	return s
}

// Registry holds named metrics. Get-or-create accessors are safe for
// concurrent use; a nil registry hands out nil (no-op) metrics so
// instrumented code needs no enabled-checks.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (DefaultLatencyBuckets when none are given) on
// first use. Later calls return the existing histogram regardless of
// bounds.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry's contents.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry contents.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// metricBase strips an inline label set from a metric name:
// `store_queries_total{engine="native"}` → `store_queries_total`. The
// registry has no first-class label support — labeled series are distinct
// names carrying their label set inline — so the exposition writer derives
// the metric family from the base name.
func metricBase(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Metric names are emitted verbatim (choose them accordingly);
// names sharing a base before an inline `{label}` set form one metric
// family and get a single # TYPE header (sorted emission keeps them
// adjacent, as `{` sorts after every identifier character).
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	lastBase := ""
	for _, name := range sortedKeys(s.Counters) {
		if base := metricBase(name); base != lastBase {
			lastBase = base
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", base); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	lastBase = ""
	for _, name := range sortedKeys(s.Gauges) {
		if base := metricBase(name); base != lastBase {
			lastBase = base
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", base); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := formatFloat(b.UpperBound)
			if math.IsInf(b.UpperBound, 1) {
				le = "+Inf"
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WriteJSON renders the snapshot as indented JSON (the `acbench -metrics`
// dump format).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ServeHTTP exposes the registry expvar-style: Prometheus text by
// default, JSON with ?format=json or an Accept header naming
// application/json (the query parameter wins when both are present).
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	format := req.URL.Query().Get("format")
	if format == "" && strings.Contains(req.Header.Get("Accept"), "application/json") {
		format = "json"
	}
	if format == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = r.WritePrometheus(w)
}
