package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. Nil counters no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// MultiCounter fans every increment out to a set of counters — the
// aliasing device that keeps a legacy metric name (sqldb_*, nativedb_*)
// ticking next to its backend-neutral store_* replacement. A nil or empty
// MultiCounter no-ops, like a nil *Counter.
type MultiCounter []*Counter

// Add adds n to every aliased counter.
func (m MultiCounter) Add(n int64) {
	for _, c := range m {
		c.Add(n)
	}
}

// Inc adds 1 to every aliased counter.
func (m MultiCounter) Inc() { m.Add(1) }

// Gauge is a metric that can go up and down. Nil gauges no-op.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultLatencyBuckets are the fixed histogram bucket upper bounds in
// seconds, spanning the microsecond statements of the SQL engine up to
// whole-run annotation times.
var DefaultLatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// Histogram is a fixed-bucket latency histogram (cumulative counts,
// Prometheus-style). Nil histograms no-op.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds
	counts []uint64  // len(bounds)+1, last bucket is +Inf
	count  uint64
	sum    float64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Buckets holds cumulative counts per upper bound; the final entry is
	// the +Inf bucket and equals Count.
	Buckets []BucketCount `json:"buckets"`
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	// P50/P95/P99 are the interpolated latency quantiles (see Quantile),
	// precomputed so JSON consumers need no bucket math.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Quantile estimates the p-quantile (p in [0,1], clamped) from the
// cumulative buckets by linear interpolation inside the bucket holding
// the target rank — the same estimate Prometheus's histogram_quantile
// computes server-side. Values beyond the highest finite bound (the +Inf
// bucket) report that highest finite bound: the histogram cannot resolve
// further. An empty histogram reports 0; p=0 reports the lower edge of
// the first occupied bucket.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	var prevCum uint64
	var lower float64
	for i, b := range s.Buckets {
		if i > 0 {
			lower = s.Buckets[i-1].UpperBound
			prevCum = s.Buckets[i-1].Count
		}
		in := b.Count - prevCum
		if in == 0 || float64(b.Count) < rank {
			continue
		}
		if math.IsInf(b.UpperBound, 1) {
			return lower
		}
		frac := (rank - float64(prevCum)) / float64(in)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lower + (b.UpperBound-lower)*frac
	}
	return lower
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// MarshalJSON renders the upper bound as a string so the final +Inf
// bucket survives encoding/json (which rejects infinite float values).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := formatFloat(b.UpperBound)
	if math.IsInf(b.UpperBound, 1) {
		le = "+Inf"
	}
	return json.Marshal(struct {
		UpperBound string `json:"le"`
		Count      uint64 `json:"count"`
	}{le, b.Count})
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		s.Buckets = append(s.Buckets, BucketCount{UpperBound: b, Count: cum})
	}
	cum += h.counts[len(h.bounds)]
	s.Buckets = append(s.Buckets, BucketCount{UpperBound: math.Inf(1), Count: cum})
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Registry holds named metrics. Get-or-create accessors are safe for
// concurrent use; a nil registry hands out nil (no-op) metrics so
// instrumented code needs no enabled-checks.
type Registry struct {
	// legacyOff gates the deprecated sqldb_*/nativedb_* alias series (see
	// SetLegacyNames); stored inverted so the zero value keeps them on,
	// matching NewRegistry's default for this release.
	legacyOff atomic.Bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// SetLegacyNames chooses whether the deprecated backend-specific alias
// series (sqldb_*, nativedb_*) are still dual-written next to their
// backend-neutral store_* replacements. The default is on for one more
// release; dashboards should migrate to the store_* names.
func (r *Registry) SetLegacyNames(on bool) {
	if r == nil {
		return
	}
	r.legacyOff.Store(!on)
}

// LegacyNames reports whether the deprecated alias series are written
// (false on a nil registry).
func (r *Registry) LegacyNames() bool {
	return r != nil && !r.legacyOff.Load()
}

// CounterAliased returns a MultiCounter ticking the canonical name and —
// while LegacyNames is on — the deprecated legacy alias alongside it.
// Backends use this for their dual-written series so that turning the
// aliases off is one registry switch.
func (r *Registry) CounterAliased(name, legacy string) MultiCounter {
	if r == nil {
		return nil
	}
	if r.LegacyNames() {
		return MultiCounter{r.Counter(name), r.Counter(legacy)}
	}
	return MultiCounter{r.Counter(name)}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (DefaultLatencyBuckets when none are given) on
// first use. Later calls return the existing histogram regardless of
// bounds.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry's contents.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry contents.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// metricBase strips an inline label set from a metric name:
// `store_queries_total{engine="native"}` → `store_queries_total`. The
// registry has no first-class label support — labeled series are distinct
// names carrying their label set inline — so the exposition writer derives
// the metric family from the base name.
func metricBase(name string) string {
	base, _ := splitMetricName(name)
	return base
}

// splitMetricName splits an inline-labeled name into its family base and
// the bare label list: `x{a="b"}` → ("x", `a="b"`); an unlabeled name
// yields ("x", ""). The histogram writer needs the pieces separately to
// splice the `le` label in and to hang the _sum/_count/_pNN suffixes on
// the base rather than after the closing brace.
func splitMetricName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Metric names are emitted verbatim (choose them accordingly);
// names sharing a base before an inline `{label}` set form one metric
// family and get a single # TYPE header (sorted emission keeps them
// adjacent, as `{` sorts after every identifier character).
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	lastBase := ""
	for _, name := range sortedKeys(s.Counters) {
		if base := metricBase(name); base != lastBase {
			lastBase = base
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", base); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	lastBase = ""
	for _, name := range sortedKeys(s.Gauges) {
		if base := metricBase(name); base != lastBase {
			lastBase = base
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", base); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	lastBase = ""
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		base, labels := splitMetricName(name)
		if base != lastBase {
			lastBase = base
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
				return err
			}
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		for _, b := range h.Buckets {
			le := formatFloat(b.UpperBound)
			if math.IsInf(b.UpperBound, 1) {
				le = "+Inf"
			}
			series := fmt.Sprintf("%s_bucket{le=%q}", base, le)
			if labels != "" {
				series = fmt.Sprintf("%s_bucket{%s,le=%q}", base, labels, le)
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", series, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
			base, suffix, formatFloat(h.Sum), base, suffix, h.Count); err != nil {
			return err
		}
	}
	// Interpolated latency quantiles, derived per histogram series. Each
	// suffix is its own gauge family (a histogram family may not carry
	// extra sample suffixes), emitted in one pass per suffix so label
	// variants of a base stay adjacent under a single TYPE header.
	for _, q := range []struct {
		suffix string
		p      float64
	}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}} {
		lastBase = ""
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			if h.Count == 0 {
				continue
			}
			base, labels := splitMetricName(name)
			fam := base + q.suffix
			if fam != lastBase {
				lastBase = fam
				if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", fam); err != nil {
					return err
				}
			}
			series := fam
			if labels != "" {
				series = fam + "{" + labels + "}"
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", series, formatFloat(h.Quantile(q.p))); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WriteJSON renders the snapshot as indented JSON (the `acbench -metrics`
// dump format).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ServeHTTP exposes the registry expvar-style: Prometheus text by
// default, JSON with ?format=json or an Accept header naming
// application/json (the query parameter wins when both are present).
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	format := req.URL.Query().Get("format")
	if format == "" && strings.Contains(req.Header.Get("Accept"), "application/json") {
		format = "json"
	}
	if format == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = r.WritePrometheus(w)
}
