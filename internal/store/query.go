package store

import (
	"fmt"
	"time"

	"xmlac/internal/nativedb"
	"xmlac/internal/obs"
	"xmlac/internal/shred"
	"xmlac/internal/xmltree"
	"xmlac/internal/xpath"
)

// The node-set algebra of the annotation queries (Figure 5) is defined by
// the native store — an XPath leaf or a union/except/intersect over two
// subexpressions — and re-exported here so the policy layer can build
// annotation queries against the store seam alone, without naming either
// backend package.

// SetExpr is a node-set expression: an XPath leaf or a set operation.
type SetExpr = nativedb.SetExpr

// SetOp combines node sets.
type SetOp = nativedb.SetOp

// Set operators of the annotation-query algebra.
const (
	// OpUnion is the union operator.
	OpUnion = nativedb.OpUnion
	// OpExcept is the except operator.
	OpExcept = nativedb.OpExcept
	// OpIntersect is the intersect operator.
	OpIntersect = nativedb.OpIntersect
)

// PathLeaf wraps an XPath expression as a set expression.
func PathLeaf(p *xpath.Path) *SetExpr { return nativedb.PathLeaf(p) }

// Combine folds expressions with one operator; nil when the list is empty.
func Combine(op SetOp, exprs ...*SetExpr) *SetExpr { return nativedb.Combine(op, exprs...) }

// AnnotationQuery is the output of algorithm Annotation-Queries
// (Figure 5): the node-set expression designating the nodes whose sign
// must be flipped away from the policy default, together with that sign.
// The policy layer compiles one from the Table 2 semantics; every engine
// executes it in its own idiom (mini-XQuery update or compound SQL).
type AnnotationQuery struct {
	// Expr selects the nodes to update; nil when the rule sets make the
	// update set trivially empty.
	Expr *SetExpr
	// Sign is the annotation to write on the selected nodes (the
	// opposite of the policy default).
	Sign xmltree.Sign
	// Default is the policy's default sign, for the remaining nodes.
	Default xmltree.Sign
}

// XQueryText renders the annotation query as the mini-XQuery update the
// native store executes, mirroring the paper's example
//
//	for $n := doc("xmlgen")((R1 union R2 union R6) except (R3 union R5))
//	return xmlac:annotate($n, "+")
func (q AnnotationQuery) XQueryText(docName string) string {
	if q.Expr == nil {
		return ""
	}
	return fmt.Sprintf(`for $n in doc(%q)(%s) return xmlac:annotate($n, %q)`,
		docName, q.Expr, q.Sign.String())
}

// SQLText renders the annotation query as the compound SQL SELECT
// computing the universal ids to update, e.g. the paper's
//
//	(Q1 UNION Q2 UNION Q6) EXCEPT (Q3 UNION Q5)
func (q AnnotationQuery) SQLText(m *shred.Mapping) (string, error) {
	if q.Expr == nil {
		return "", nil
	}
	return setExprSQL(m, q.Expr)
}

func setExprSQL(m *shred.Mapping, e *SetExpr) (string, error) {
	if e.Path != nil {
		return shred.Translate(m, e.Path)
	}
	l, err := setExprSQL(m, e.Left)
	if err != nil {
		return "", err
	}
	r, err := setExprSQL(m, e.Right)
	if err != nil {
		return "", err
	}
	var op string
	switch e.Op {
	case OpUnion:
		op = "UNION"
	case OpExcept:
		op = "EXCEPT"
	default:
		op = "INTERSECT"
	}
	return "(" + l + ") " + op + " (" + r + ")", nil
}

// AnnotateStats reports what an annotation run did.
type AnnotateStats struct {
	// Updated is the number of nodes whose sign was set away from default.
	Updated int
	// Reset is the number of nodes whose sign was (re)set to the default
	// (full annotation resets everything; re-annotation only the
	// affected region).
	Reset int
	// Duration is the wall-clock time of the run (filled by the caller).
	Duration time.Duration
	// Phases is the per-stage time breakdown, recorded whether or not a
	// tracer is attached.
	Phases obs.Phases
}

// stage runs one named pipeline stage: a span under parent when tracing,
// and a Phases entry on the stats either way.
func stage(parent *obs.Span, phases *obs.Phases, name string, f func() error) error {
	start := time.Now()
	sp := obs.Start(parent, name)
	err := f()
	sp.Finish()
	phases.Add(name, time.Since(start))
	return err
}
