package store

import (
	"context"
	"fmt"
	"io"
	"slices"
	"strings"
	"time"

	"xmlac/internal/obs"
	"xmlac/internal/pool"
	"xmlac/internal/shred"
	"xmlac/internal/sqldb"
	"xmlac/internal/xmltree"
	"xmlac/internal/xpath"
)

func init() {
	Register("postgres", openerFor(sqldb.EngineRow))
	Register("monetsql", openerFor(sqldb.EngineColumn))
	// monetcol was an alias of monetsql while the two differed only in
	// physical layout; with the vectorized executor it is its own backend
	// (the "real MonetDB" role — typed vectors plus batch operators).
	Register("monetcol", openerFor(sqldb.EngineColumnVector))
}

// relationalEngine shreds the document ShreX-style into one table per
// element type with a sign column, and runs annotation and request
// processing through translated SQL — the paper's MonetDB/SQL (column
// layout) and PostgreSQL (row layout) configurations.
type relationalEngine struct {
	name     string // canonical registered name
	db       *sqldb.Database
	m        *shred.Mapping
	def      xmltree.Sign
	pl       *pool.Pool // nil selects the sequential reference path
	pushdown bool       // fold sign checks into translated queries
	route    bool       // id→table routing of the fallback sign probes
	signs    *obs.Counter
}

// Compile-time interface compliance, checked by go vet and the CI gate.
var (
	_ Engine     = (*relationalEngine)(nil)
	_ Relational = (*relationalEngine)(nil)
	_ RawQuerier = (*relationalEngine)(nil)
)

func openerFor(kind sqldb.Engine) Opener {
	return func(o Options) (Engine, error) {
		if o.Schema == nil {
			return nil, fmt.Errorf("store: relational engines require a schema to shred by")
		}
		m, err := shred.BuildMapping(o.Schema)
		if err != nil {
			return nil, err
		}
		name := "postgres"
		switch kind {
		case sqldb.EngineColumn:
			name = "monetsql"
		case sqldb.EngineColumnVector:
			name = "monetcol"
		}
		e := &relationalEngine{
			name: name, db: sqldb.Open(kind), m: m, def: o.Default,
			pl: o.Pool, pushdown: o.PushdownSigns, route: !o.NoIDRouting,
		}
		if o.Metrics != nil {
			e.SetMetrics(o.Metrics)
		}
		return e, nil
	}
}

func (e *relationalEngine) Name() string     { return e.name }
func (e *relationalEngine) Relational() bool { return true }

// DB implements Relational.
func (e *relationalEngine) DB() *sqldb.Database { return e.db }

// Mapping implements Relational.
func (e *relationalEngine) Mapping() *shred.Mapping { return e.m }

// Load shreds the document into the database with every sign initialized
// to the policy default (Figure 6's precondition).
func (e *relationalEngine) Load(doc *xmltree.Document) error {
	sh := shred.NewShredder(e.m)
	sh.DefaultSign = e.def
	return sh.IntoDB(e.db, doc)
}

// Annotate implements algorithm Annotate (Figure 6) as a full
// annotation: reset every tuple's s column to the policy default, run
// the annotation SQL to compute the id set S, then — exactly as the
// paper's two-phase algorithm does — iterate over all tables, intersect
// each table's ids with S, and issue bulk UPDATEs for the matches.
func (e *relationalEngine) Annotate(ctx context.Context, q AnnotationQuery) (AnnotateStats, error) {
	parent := obs.FromContext(ctx)
	stats := AnnotateStats{}
	defSign := "'" + q.Default.String() + "'"
	tables := e.m.Tables()
	if err := stage(parent, &stats.Phases, "reset-signs", func() error {
		// Per-table resets touch disjoint relations; fan them out and merge
		// the counts from index-addressed slots so the total is deterministic.
		resets := make([]int, len(tables))
		if err := e.pl.ForEach(len(tables), func(i int) error {
			res, err := e.db.Exec(fmt.Sprintf("UPDATE %s SET %s = %s", tables[i].Table, shred.SignColumn, defSign))
			if err != nil {
				return err
			}
			resets[i] = res.Affected
			return nil
		}); err != nil {
			return err
		}
		for _, n := range resets {
			stats.Reset += n
		}
		return nil
	}); err != nil {
		return stats, err
	}
	if q.Expr == nil {
		e.signs.Add(int64(stats.Reset))
		return stats, nil
	}
	// With a pool, the per-rule leaf queries of the compound annotation SQL
	// — independent read-only SELECTs — fan out and the UNION/EXCEPT/
	// INTERSECT operators fold over the id sets in memory, mirroring the
	// native store's EvalSetWith. Sequentially, the compound statement runs
	// as one round trip, the paper's literal shape.
	leaves := sqlLeaves(q.Expr)
	parallelSet := e.pl != nil && len(leaves) > 1
	var sqlText string
	leafSQL := make([]string, len(leaves))
	if err := stage(parent, &stats.Phases, "build-annotation-query", func() error {
		if !parallelSet {
			var err error
			sqlText, err = q.SQLText(e.m)
			return err
		}
		for i, l := range leaves {
			var err error
			if leafSQL[i], err = shred.Translate(e.m, l.Path); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return stats, err
	}
	var ids map[int64]bool
	if err := stage(parent, &stats.Phases, "compute-update-set", func() error {
		if !parallelSet {
			var err error
			ids, err = e.queryIDs(sqlText)
			return err
		}
		sets := make([]map[int64]bool, len(leaves))
		if err := e.pl.ForEach(len(leaves), func(i int) error {
			var err error
			sets[i], err = e.queryIDs(leafSQL[i])
			return err
		}); err != nil {
			return err
		}
		byLeaf := make(map[*SetExpr]map[int64]bool, len(leaves))
		for i, l := range leaves {
			byLeaf[l] = sets[i]
		}
		ids = foldIDSets(q.Expr, byLeaf)
		return nil
	}); err != nil {
		return stats, err
	}
	err := stage(parent, &stats.Phases, "apply-updates", func() error {
		n, err := e.updateSigns(ids, q.Sign)
		stats.Updated = n
		return err
	})
	e.signs.Add(int64(stats.Reset + stats.Updated))
	return stats, err
}

// sqlLeaves collects the per-rule path leaves of a set expression in
// deterministic left-to-right order.
func sqlLeaves(e *SetExpr) []*SetExpr {
	if e == nil {
		return nil
	}
	if e.Path != nil {
		return []*SetExpr{e}
	}
	return append(sqlLeaves(e.Left), sqlLeaves(e.Right)...)
}

// foldIDSets applies the set operators over the leaves' id sets. The leaf
// sets are consumed in place (each leaf occurs once in the tree), so the
// fold allocates nothing beyond what the leaf queries already returned.
func foldIDSets(e *SetExpr, byLeaf map[*SetExpr]map[int64]bool) map[int64]bool {
	if e.Path != nil {
		return byLeaf[e]
	}
	l := foldIDSets(e.Left, byLeaf)
	r := foldIDSets(e.Right, byLeaf)
	switch e.Op {
	case OpUnion:
		for id := range r {
			l[id] = true
		}
	case OpExcept:
		for id := range r {
			delete(l, id)
		}
	default: // intersect
		for id := range l {
			if !r[id] {
				delete(l, id)
			}
		}
	}
	return l
}

// queryIDs runs a compound id query and returns the id set. The error
// prefix predates the store seam and is kept verbatim.
func (e *relationalEngine) queryIDs(sqlText string) (map[int64]bool, error) {
	res, err := e.db.Exec(sqlText)
	if err != nil {
		return nil, fmt.Errorf("core: annotation query failed: %w\nSQL: %s", err, truncateSQL(sqlText))
	}
	ids := make(map[int64]bool, len(res.Rows))
	for _, row := range res.Rows {
		ids[row[0].I] = true
	}
	return ids, nil
}

// updateSigns is the second phase of Figure 6: for each table, intersect
// its ids with the computed set and update the matching tuples. The paper's
// algorithm updated them one statement per tuple; here each table's matches
// go out as bulk UPDATE … WHERE id IN (…) batches (the pk index resolves the
// IN list), and the per-table units fan out on the pool. The id set is only
// read, so sharing it across workers is safe.
func (e *relationalEngine) updateSigns(ids map[int64]bool, sign xmltree.Sign) (int, error) {
	signLit := "'" + sign.String() + "'"
	tables := e.m.Tables()
	counts := make([]int, len(tables))
	err := e.pl.ForEach(len(tables), func(i int) error {
		res, err := e.db.Exec("SELECT id FROM " + tables[i].Table)
		if err != nil {
			return err
		}
		matched := make([]int64, 0, len(res.Rows))
		for _, row := range res.Rows {
			if ids[row[0].I] {
				matched = append(matched, row[0].I)
			}
		}
		n, err := e.bulkUpdateSigns(tables[i].Table, signLit, matched)
		counts[i] = n
		return err
	})
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, err
}

// bulkUpdateSigns sets one table's sign column for the given ids with
// batched UPDATE … WHERE id IN (…) statements, replacing the former
// one-UPDATE-per-tuple loop (the classic N+1 round-trip pattern).
func (e *relationalEngine) bulkUpdateSigns(table, signLit string, ids []int64) (int, error) {
	const batch = 256
	total := 0
	probe, err := e.db.PrepareIn("UPDATE " + table + " SET " + shred.SignColumn + " = " + signLit + " WHERE id IN (?)")
	if err != nil {
		return 0, err
	}
	for start := 0; start < len(ids); start += batch {
		end := start + batch
		if end > len(ids) {
			end = len(ids)
		}
		res, err := probe.ExecInts(ids[start:end])
		if err != nil {
			return total, err
		}
		total += res.Affected
	}
	return total, nil
}

func truncateSQL(s string) string {
	if len(s) <= 400 {
		return s
	}
	return s[:400] + " …"
}

// EvalScope translates a node-set expression to compound SQL and returns
// the matched ids.
func (e *relationalEngine) EvalScope(x *SetExpr) (map[int64]bool, error) {
	if x == nil {
		return map[int64]bool{}, nil
	}
	sqlText, err := setExprSQL(e.m, x)
	if err != nil {
		return nil, err
	}
	return e.queryIDs(sqlText)
}

// ApplySignsWithin rewrites signs inside the affected set only,
// following the two-phase discipline of Figure 6: per table, split the
// affected ids by target sign and write them as bulk batches.
func (e *relationalEngine) ApplySignsWithin(affected, update map[int64]bool, sign, def xmltree.Sign) (updated, reset int, err error) {
	signLit := "'" + sign.String() + "'"
	defLit := "'" + def.String() + "'"
	for _, ti := range e.m.Tables() {
		res, err := e.db.Exec("SELECT id FROM " + ti.Table)
		if err != nil {
			return updated, reset, err
		}
		var toSign, toDefault []int64
		for _, row := range res.Rows {
			id := row[0].I
			if !affected[id] {
				continue
			}
			if update[id] {
				toSign = append(toSign, id)
			} else {
				toDefault = append(toDefault, id)
			}
		}
		n, err := e.bulkUpdateSigns(ti.Table, signLit, toSign)
		updated += n
		if err != nil {
			return updated, reset, err
		}
		n, err = e.bulkUpdateSigns(ti.Table, defLit, toDefault)
		reset += n
		if err != nil {
			return updated, reset, err
		}
	}
	e.signs.Add(int64(updated + reset))
	return updated, reset, nil
}

// Request evaluates a query against the annotated store: the query is
// translated to SQL, and every returned tuple's sign is checked. The
// reference path probes every table of the mapping; the optimized
// variants (sign pushdown, id→table routing) are result-identical.
//
// Note that the relational store materializes all signs at annotation
// time (Figure 6 initializes every tuple to the default), so unlike the
// native store no default needs consulting here.
func (e *relationalEngine) Request(ctx context.Context, q *xpath.Path) (*RequestResult, error) {
	parent := obs.FromContext(ctx)
	sp := obs.Start(parent, "translate-sql")
	sqlText, err := shred.Translate(e.m, q)
	sp.Finish()
	if err != nil {
		return nil, err
	}
	sp = obs.Start(parent, "eval-query")
	ids, err := e.queryIDs(sqlText)
	sp.SetAttr("matched", len(ids)).Finish()
	if err != nil {
		return nil, err
	}
	idList := make([]int64, 0, len(ids))
	for id := range ids {
		idList = append(idList, id)
	}
	slices.Sort(idList)

	sp = obs.Start(parent, "check-access")
	defer sp.Finish()
	var accessible map[int64]bool
	switch {
	case e.pushdown:
		sp.SetAttr("mode", "pushdown")
		signedSQL, err := shred.TranslateAccessible(e.m, q)
		if err != nil {
			return nil, err
		}
		accessible, err = e.queryIDs(signedSQL)
		if err != nil {
			return nil, err
		}
	case e.route:
		sp.SetAttr("mode", "routed")
		accessible, err = e.probeSignsRouted(idList)
		if err != nil {
			return nil, err
		}
	default:
		sp.SetAttr("mode", "all-tables")
		accessible, err = e.probeSigns(e.m.Tables(), idList)
		if err != nil {
			return nil, err
		}
	}
	for _, id := range idList {
		if !accessible[id] {
			sp.SetAttr("outcome", "denied")
			return nil, &DeniedError{ID: id}
		}
	}
	sp.SetAttr("outcome", "granted")
	return &RequestResult{IDs: idList, Checked: len(ids)}, nil
}

// RawQuery evaluates a query against the shredded tables with no sign
// probing — the rewriting enforcer's matched-set probe (store.RawQuerier).
// The result shape matches Request's relational family: deduplicated
// universal ids, ascending.
func (e *relationalEngine) RawQuery(ctx context.Context, q *xpath.Path) (*RequestResult, error) {
	parent := obs.FromContext(ctx)
	sp := obs.Start(parent, "translate-sql")
	sqlText, err := shred.Translate(e.m, q)
	sp.Finish()
	if err != nil {
		return nil, err
	}
	sp = obs.Start(parent, "eval-query")
	ids, err := e.queryIDs(sqlText)
	sp.SetAttr("matched", len(ids)).Finish()
	if err != nil {
		return nil, err
	}
	idList := make([]int64, 0, len(ids))
	for id := range ids {
		idList = append(idList, id)
	}
	slices.Sort(idList)
	return &RequestResult{IDs: idList, Checked: len(ids)}, nil
}

// probeSigns checks signs table by table with batched IN probes (the
// paper's universal-identifier iteration: an id alone does not identify its
// table); the IN lists resolve through the primary-key index.
func (e *relationalEngine) probeSigns(tables []*shred.TableInfo, idList []int64) (map[int64]bool, error) {
	accessible := map[int64]bool{}
	for _, ti := range tables {
		if err := e.probeSignsTable(ti.Table, idList, accessible); err != nil {
			return nil, err
		}
	}
	return accessible, nil
}

// probeSignsRouted probes each id's owning table only, falling back to the
// full cross-product for ids the owner index does not know (databases
// populated outside the shredder).
func (e *relationalEngine) probeSignsRouted(idList []int64) (map[int64]bool, error) {
	owned, unknown := e.m.GroupByOwner(idList)
	accessible := map[int64]bool{}
	// Deterministic table order keeps the probe sequence stable.
	tables := make([]string, 0, len(owned))
	for t := range owned {
		tables = append(tables, t)
	}
	slices.Sort(tables)
	for _, t := range tables {
		if err := e.probeSignsTable(t, owned[t], accessible); err != nil {
			return nil, err
		}
	}
	if len(unknown) > 0 {
		for _, ti := range e.m.Tables() {
			if err := e.probeSignsTable(ti.Table, unknown, accessible); err != nil {
				return nil, err
			}
		}
	}
	return accessible, nil
}

// probeSignsTable issues the batched sign probes for one table, adding the
// accessible ids to the shared set.
func (e *relationalEngine) probeSignsTable(table string, idList []int64, accessible map[int64]bool) error {
	const batch = 256
	probe, err := e.db.PrepareIn("SELECT id FROM " + table + " WHERE " + shred.SignColumn + " = '+' AND id IN (?)")
	if err != nil {
		return err
	}
	for start := 0; start < len(idList); start += batch {
		end := start + batch
		if end > len(idList) {
			end = len(idList)
		}
		res, err := probe.ExecInts(idList[start:end])
		if err != nil {
			return err
		}
		for _, row := range res.Rows {
			accessible[row[0].I] = true
		}
	}
	return nil
}

// AccessibleIDs lists the accessible tuple ids of the annotated store
// (s = '+').
func (e *relationalEngine) AccessibleIDs() (map[int64]bool, error) {
	out := map[int64]bool{}
	for _, ti := range e.m.Tables() {
		res, err := e.db.Exec(fmt.Sprintf("SELECT id FROM %s WHERE %s = '+'", ti.Table, shred.SignColumn))
		if err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			out[row[0].I] = true
		}
	}
	return out, nil
}

// DeleteRows removes the tuples of deleted nodes, batching ids per table.
func (e *relationalEngine) DeleteRows(byLabel map[string][]int64) (int, error) {
	const batch = 256
	total := 0
	for label, ids := range byLabel {
		ti := e.m.TableFor(label)
		if ti == nil {
			return total, fmt.Errorf("core: no table for element %q", label)
		}
		for start := 0; start < len(ids); start += batch {
			end := start + batch
			if end > len(ids) {
				end = len(ids)
			}
			var b strings.Builder
			fmt.Fprintf(&b, "DELETE FROM %s WHERE id IN (", ti.Table)
			for i, id := range ids[start:end] {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%d", id)
			}
			b.WriteString(")")
			res, err := e.db.Exec(b.String())
			if err != nil {
				return total, err
			}
			total += res.Affected
		}
		// Keep the id→table routing index in sync. Dropping an id is always
		// safe: an unknown id simply falls back to the all-tables probe.
		e.m.ForgetOwner(ids...)
	}
	return total, nil
}

// InsertSubtree mirrors a freshly inserted subtree into the store with
// signs at the policy default.
func (e *relationalEngine) InsertSubtree(root *xmltree.Node) error {
	sh := &shred.Shredder{Mapping: e.m, DefaultSign: e.def}
	return sh.InsertSubtree(e.db, root)
}

// Explain translates the query to SQL and returns the engine's EXPLAIN
// output — the greedy planner's access paths, join order and row counts.
func (e *relationalEngine) Explain(q *xpath.Path) (string, error) {
	sqlText, err := shred.Translate(e.m, q)
	if err != nil {
		return "", err
	}
	res, err := e.db.Exec("EXPLAIN " + sqlText)
	if err != nil {
		return "", err
	}
	var b []byte
	for i, row := range res.Rows {
		if i > 0 {
			b = append(b, '\n')
		}
		b = append(b, row[0].S...)
	}
	return string(b), nil
}

func (e *relationalEngine) Begin() error        { return e.db.Begin() }
func (e *relationalEngine) Commit() error       { return e.db.Commit() }
func (e *relationalEngine) Rollback() error     { return e.db.Rollback() }
func (e *relationalEngine) InTransaction() bool { return e.db.InTransaction() }

// SetMetrics attaches the registry to the underlying database (feeding
// the store_* series and the legacy sqldb_* aliases) plus the engine's
// own signs-written counter.
func (e *relationalEngine) SetMetrics(r *obs.Registry) {
	e.db.SetMetrics(r)
	if r == nil {
		e.signs = nil
		return
	}
	e.signs = r.Counter(fmt.Sprintf("store_signs_written_total{engine=%q}", EngineLabel(e)))
}

// SetSlowQueryLog forwards to the database's slow-query log.
func (e *relationalEngine) SetSlowQueryLog(w io.Writer, threshold time.Duration) {
	e.db.SetSlowQueryLog(w, threshold)
}
