// Package store defines the backend seam of the access-control system:
// the Engine interface captures everything the core pipeline (optimizer,
// annotator, reannotator, requester — Section 4 of the paper) needs from
// an annotation store, and the package registry maps the paper's backend
// names — the native XML store of the MonetDB/XQuery role, the relational
// column store of the MonetDB/SQL role, the relational row store of the
// PostgreSQL role — to engine constructors.
//
// The paper's central claim is that one access-control model (the Table 2
// semantics and the Figure 5 annotation queries) is enforced identically
// over native-XML and relational storage. The Engine interface is that
// claim as a type: core speaks only this interface, the two storage
// families implement it, and the golden equivalence suite drives every
// registered engine through it to verify byte-identical behavior.
//
// On top of the uniform interface, Catalog (catalog.go) routes multiple
// named documents across shards of independent engines.
package store

import (
	"context"
	"io"
	"time"

	"xmlac/internal/dtd"
	"xmlac/internal/obs"
	"xmlac/internal/pool"
	"xmlac/internal/shred"
	"xmlac/internal/sqldb"
	"xmlac/internal/xmltree"
	"xmlac/internal/xpath"
)

// Engine is one annotation store serving a single document: it
// materializes the '+'/'−' signs the annotator computes, answers the
// requester's access checks, and mirrors document updates. Engines are
// obtained from the registry via Open; each implementation registers
// itself under the backend names of the evaluation.
type Engine interface {
	// Name returns the canonical registered name of the engine
	// ("native", "monetsql" or "postgres").
	Name() string
	// Relational reports whether the engine is backed by the SQL store
	// (signs live in per-table s columns rather than on the tree).
	Relational() bool

	// Load installs a document: the native engine takes ownership of the
	// tree, the relational engines shred it into tables with every sign
	// initialized to the policy default (Figure 6's precondition).
	Load(doc *xmltree.Document) error

	// Annotate performs full annotation from a compiled annotation query
	// (Figure 5): reset to the default, compute the update set, flip the
	// selected signs. Stats carry the per-stage phase breakdown; with a
	// span in ctx (obs.FromContext) the same stages emit a span subtree
	// under it, keeping the caller's trace connected across the seam.
	Annotate(ctx context.Context, q AnnotationQuery) (AnnotateStats, error)

	// EvalScope evaluates a node-set expression and returns the matched
	// universal ids — the re-annotation machinery's scope probe
	// (Section 5.3 observes rule scopes before and after an update).
	// A nil expression yields an empty set.
	EvalScope(e *SetExpr) (map[int64]bool, error)
	// ApplySignsWithin rewrites signs only inside the affected set:
	// members of update get sign, the rest of affected revert to the
	// default — the second phase of a partial re-annotation.
	ApplySignsWithin(affected, update map[int64]bool, sign, def xmltree.Sign) (updated, reset int, err error)

	// Request evaluates a user query and applies the paper's
	// all-or-nothing check, returning ErrAccessDenied (wrapped in a
	// DeniedError) when any matched node is inaccessible. A span in ctx
	// parents the evaluation's phase spans.
	Request(ctx context.Context, q *xpath.Path) (*RequestResult, error)
	// AccessibleIDs lists the currently accessible element ids.
	AccessibleIDs() (map[int64]bool, error)

	// DeleteRows removes the tuples of deleted elements, grouped by
	// element label. The tree itself is updated by the caller; the
	// native engine has nothing further to do and returns 0.
	DeleteRows(byLabel map[string][]int64) (int, error)
	// InsertSubtree mirrors a freshly inserted subtree into the store
	// with signs at the policy default (a no-op on the native engine,
	// where the inserted nodes are already on the tree).
	InsertSubtree(root *xmltree.Node) error

	// Explain returns the engine's query plan for a translated request;
	// engines without a planner return an error.
	Explain(q *xpath.Path) (string, error)

	// Begin, Commit, Rollback and InTransaction scope multi-statement
	// updates atomically. The native engine's tree updates are applied
	// by the caller, so its transaction calls are accepted no-ops and
	// InTransaction always reports false.
	Begin() error
	Commit() error
	Rollback() error
	InTransaction() bool

	// SetMetrics attaches a metrics registry (nil detaches): engines
	// feed the shared store_* series plus their legacy backend names.
	SetMetrics(*obs.Registry)
	// SetSlowQueryLog logs statements slower than threshold to w; a
	// no-op on engines without a statement executor.
	SetSlowQueryLog(w io.Writer, threshold time.Duration)
}

// RawQuerier is the optional capability the rewriting enforcer probes
// for: evaluating a user query over the *unannotated* store — no sign
// checks, no access decision — returning the raw match set in the
// engine family's native result shape (Nodes in evaluation order for the
// tree store, deduplicated ascending IDs for the relational ones).
// Engines that cannot evaluate without consulting signs simply do not
// implement it, and the planner refuses rewriting enforcement on them.
type RawQuerier interface {
	// RawQuery evaluates q with no access checking. A span in ctx parents
	// the evaluation's phase spans, exactly as in Request.
	RawQuery(ctx context.Context, q *xpath.Path) (*RequestResult, error)
}

// Relational is the optional interface of SQL-backed engines, exposing
// the concrete database and shredding mapping for tools and tests that
// need to inspect the tables directly. Assert it on an Engine:
//
//	if r, ok := eng.(store.Relational); ok { db := r.DB() }
type Relational interface {
	// DB returns the underlying SQL database.
	DB() *sqldb.Database
	// Mapping returns the ShreX-style element→table mapping.
	Mapping() *shred.Mapping
}

// Options configure an engine at Open time.
type Options struct {
	// DocName names the document inside the engine (the native store's
	// doc("name") handle); defaults to "doc".
	DocName string
	// Schema is the document schema the relational engines shred by;
	// required for them, unused by the native engine.
	Schema *dtd.Schema
	// Default is the policy's default sign, materialized on every
	// tuple at load time and restored by sign resets.
	Default xmltree.Sign
	// Metrics is attached to the engine (see Engine.SetMetrics).
	Metrics *obs.Registry
	// Pool bounds the worker pool the engine fans independent units out
	// on (per-rule node-set queries, per-table reset and sign-update
	// phases); nil selects the sequential reference path.
	Pool *pool.Pool
	// PushdownSigns folds the access check of relational requests into
	// the translated query instead of issuing per-table sign probes.
	PushdownSigns bool
	// NoIDRouting disables id→table routing of the relational sign
	// probes, restoring the probe-every-table reference behavior.
	NoIDRouting bool
}

// withDefaults fills the option defaults shared by all engines.
func (o Options) withDefaults() Options {
	if o.DocName == "" {
		o.DocName = "doc"
	}
	return o
}

// EngineLabel is the storage-family value engines use for their `engine`
// metric label: "native" for the tree store, "row"/"column"/"vector" for
// the relational layouts (vector being the column layout driven by the
// vectorized batch executor). Core uses it to label its per-engine
// latency series consistently with the engines' own store_* series.
func EngineLabel(e Engine) string {
	switch {
	case e == nil:
		return ""
	case !e.Relational():
		return "native"
	case e.Name() == "monetcol":
		return "vector"
	case e.Name() == "monetsql":
		return "column"
	default:
		return "row"
	}
}
