package store

import (
	"context"
	"fmt"
	"io"
	"time"

	"xmlac/internal/nativedb"
	"xmlac/internal/obs"
	"xmlac/internal/pool"
	"xmlac/internal/xmltree"
	"xmlac/internal/xpath"
)

func init() {
	Register("native", openNative, "xquery")
}

// nativeEngine materializes signs directly on the XML tree inside a
// nativedb.Store — the paper's MonetDB/XQuery configuration: annotation
// runs as a mini-XQuery update, requests walk the annotated tree, and a
// node without an explicit sign falls back to the policy default.
type nativeEngine struct {
	st      *nativedb.Store
	docName string
	doc     *xmltree.Document // set by Load
	def     xmltree.Sign      // policy default sign
	pl      *pool.Pool        // nil selects the sequential reference path
}

// Compile-time interface compliance, checked by go vet and the CI gate.
var (
	_ Engine     = (*nativeEngine)(nil)
	_ RawQuerier = (*nativeEngine)(nil)
)

func openNative(o Options) (Engine, error) {
	e := &nativeEngine{st: nativedb.OpenStore(), docName: o.DocName, def: o.Default, pl: o.Pool}
	if o.Metrics != nil {
		e.SetMetrics(o.Metrics)
	}
	return e, nil
}

func (e *nativeEngine) Name() string     { return "native" }
func (e *nativeEngine) Relational() bool { return false }

// Load registers the document in the native store; signs already on the
// tree are kept (the store serializes them as the sign attribute).
func (e *nativeEngine) Load(doc *xmltree.Document) error {
	if err := e.st.Load(e.docName, doc); err != nil {
		return err
	}
	e.doc = doc
	return nil
}

// runner adapts the pool to the native store's Runner shape; a nil pool
// selects the sequential reference path.
func (e *nativeEngine) runner() nativedb.Runner {
	if e.pl == nil {
		return nil
	}
	return e.pl.ForEach
}

// Annotate performs full annotation in the native store: clear all
// annotations (back to the materialized default), then run the
// annotation query. Mirroring the paper's native-store choice, only the
// nodes on the non-default side carry explicit signs afterwards.
func (e *nativeEngine) Annotate(ctx context.Context, q AnnotationQuery) (AnnotateStats, error) {
	parent := obs.FromContext(ctx)
	doc := e.st.Doc(e.docName)
	if doc == nil {
		return AnnotateStats{}, fmt.Errorf("core: no document %q in native store", e.docName)
	}
	stats := AnnotateStats{Reset: doc.Size()}
	_ = stage(parent, &stats.Phases, "clear-signs", func() error {
		doc.ClearSigns()
		return nil
	})
	var text string
	_ = stage(parent, &stats.Phases, "build-annotation-query", func() error {
		text = q.XQueryText(e.docName)
		return nil
	})
	if q.Expr == nil {
		return stats, nil
	}
	err := stage(parent, &stats.Phases, "apply-updates", func() error {
		// The per-rule grant/deny paths of the annotation query are
		// independent read-only XPath evaluations; the pool fans them out
		// (see nativedb.EvalSetWith) before the sequential set-operator fold.
		res, err := e.st.ExecWith(text, e.runner())
		if err != nil {
			return err
		}
		stats.Updated = res.Count
		return nil
	})
	return stats, err
}

// EvalScope evaluates a node-set expression on the tree and returns the
// matched ids.
func (e *nativeEngine) EvalScope(x *SetExpr) (map[int64]bool, error) {
	ids := map[int64]bool{}
	if x == nil {
		return ids, nil
	}
	nodes, err := nativedb.EvalSet(x, e.doc)
	if err != nil {
		return nil, err
	}
	for _, n := range nodes {
		ids[n.ID] = true
	}
	return ids, nil
}

// ApplySignsWithin rewrites signs inside the affected set only: update
// members get the sign, the rest revert to no annotation (the policy
// default decides unannotated nodes in this store).
func (e *nativeEngine) ApplySignsWithin(affected, update map[int64]bool, sign, def xmltree.Sign) (updated, reset int, err error) {
	for id := range affected {
		n := e.doc.NodeByID(id)
		if n == nil {
			continue
		}
		if update[id] {
			nativedb.Annotate(n, sign)
			updated++
		} else {
			nativedb.Annotate(n, xmltree.SignNone) // back to the default
			reset++
		}
	}
	return updated, reset, nil
}

// accessible decides a node's accessibility: explicit sign wins, absence
// means the policy default.
func (e *nativeEngine) accessible(n *xmltree.Node) bool {
	switch n.Sign {
	case xmltree.SignPlus:
		return true
	case xmltree.SignMinus:
		return false
	default:
		return e.def == xmltree.SignPlus
	}
}

// Request evaluates a query against the annotated tree; the policy
// default decides unannotated nodes.
func (e *nativeEngine) Request(ctx context.Context, q *xpath.Path) (*RequestResult, error) {
	parent := obs.FromContext(ctx)
	sp := obs.Start(parent, "eval-query")
	nodes, err := xpath.Eval(q, e.doc)
	sp.SetAttr("matched", len(nodes)).Finish()
	if err != nil {
		return nil, err
	}
	sp = obs.Start(parent, "check-access")
	defer sp.Finish()
	for _, n := range nodes {
		if !e.accessible(n) {
			sp.SetAttr("outcome", "denied")
			return nil, &DeniedError{ID: n.ID, Label: n.Label}
		}
	}
	sp.SetAttr("outcome", "granted")
	return &RequestResult{Nodes: nodes, Checked: len(nodes)}, nil
}

// RawQuery evaluates a query over the tree with no access checking —
// the rewriting enforcer's matched-set probe (store.RawQuerier).
func (e *nativeEngine) RawQuery(ctx context.Context, q *xpath.Path) (*RequestResult, error) {
	parent := obs.FromContext(ctx)
	sp := obs.Start(parent, "eval-query")
	nodes, err := xpath.Eval(q, e.doc)
	sp.SetAttr("matched", len(nodes)).Finish()
	if err != nil {
		return nil, err
	}
	return &RequestResult{Nodes: nodes, Checked: len(nodes)}, nil
}

// AccessibleIDs lists the accessible element ids of the annotated tree.
func (e *nativeEngine) AccessibleIDs() (map[int64]bool, error) {
	out := map[int64]bool{}
	e.doc.Walk(func(n *xmltree.Node) bool {
		if n.IsElement() && e.accessible(n) {
			out[n.ID] = true
		}
		return true
	})
	return out, nil
}

// DeleteRows is a no-op: deleted subtrees leave the tree (and with it
// this store) under the caller's ApplyDeleteTree.
func (e *nativeEngine) DeleteRows(byLabel map[string][]int64) (int, error) { return 0, nil }

// InsertSubtree is a no-op: inserted nodes are already on the tree.
func (e *nativeEngine) InsertSubtree(root *xmltree.Node) error { return nil }

// Explain: the native store has no SQL planner to interrogate.
func (e *nativeEngine) Explain(q *xpath.Path) (string, error) {
	return "", fmt.Errorf("store: the native engine has no query planner")
}

// The native engine's updates are tree mutations applied by the caller;
// its transaction scope is an accepted no-op.
func (e *nativeEngine) Begin() error        { return nil }
func (e *nativeEngine) Commit() error       { return nil }
func (e *nativeEngine) Rollback() error     { return nil }
func (e *nativeEngine) InTransaction() bool { return false }

// SetMetrics attaches the registry to the underlying store (feeding the
// store_* series and the legacy nativedb_* aliases).
func (e *nativeEngine) SetMetrics(r *obs.Registry) { e.st.SetMetrics(r) }

// SetSlowQueryLog is a no-op: the native store has no statement executor.
func (e *nativeEngine) SetSlowQueryLog(w io.Writer, threshold time.Duration) {}
