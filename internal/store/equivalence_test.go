// The golden cross-backend equivalence suite: the paper's central claim
// is that one access-control model is enforced identically over native
// XML and relational storage, and this suite verifies it through the
// store.Engine seam alone — every registered engine is opened by name,
// annotated from the same compiled annotation query, and must produce
// exactly the brute-force Table 2 reference semantics and identical
// request outcomes, for all four (default, conflict) combinations on
// both evaluation workloads (the hospital document and XMark).
package store_test

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"

	"xmlac/internal/core"
	"xmlac/internal/dtd"
	"xmlac/internal/hospital"
	"xmlac/internal/policy"
	"xmlac/internal/store"
	"xmlac/internal/xmark"
	"xmlac/internal/xmltree"
	"xmlac/internal/xpath"
)

// The policy texts mirror the core test suite's Table 1 hospital policy
// and the XMark grant/deny mix; the (default, conflict) header lines are
// overridden per combination below.
const hospitalPolicy = `
default deny
conflict deny
rule R1 allow //patient
rule R2 allow //patient/name
rule R3 deny //patient[treatment]
rule R4 allow //patient[treatment]/name
rule R5 deny //patient[.//experimental]
rule R6 allow //regular
rule R7 allow //regular[med = "celecoxib"]
rule R8 allow //regular[bill > 1000]
`

const xmarkPolicy = `
default deny
conflict deny
rule g1 allow //closed_auction
rule g2 allow //closed_auction//*
rule g3 allow //open_auction/*
rule g4 allow //person
rule g5 allow //person//*
rule g6 allow //item/name
rule d1 deny //closed_auction[price > 400]
rule d2 deny //creditcard
rule d3 deny //person[creditcard]
`

// workload bundles one evaluation document family with its policy and
// the request probes exercised against every engine.
type workload struct {
	name    string
	schema  *dtd.Schema
	policy  string
	gen     func() *xmltree.Document
	queries []string
}

func workloads() []workload {
	return []workload{
		{
			name:   "hospital",
			schema: hospital.Schema(),
			policy: hospitalPolicy,
			gen: func() *xmltree.Document {
				return hospital.Generate(hospital.GenOptions{Seed: 9, Departments: 2, PatientsPerDept: 10, StaffPerDept: 4})
			},
			queries: []string{
				"//patient/name",
				"//patient",
				"//regular",
				"//department",
				"//treatment",
				"/hospital",
			},
		},
		{
			name:   "xmark",
			schema: xmark.Schema(),
			policy: xmarkPolicy,
			gen: func() *xmltree.Document {
				return xmark.Generate(xmark.Options{Factor: 0.002, Seed: 7})
			},
			queries: []string{
				"//closed_auction",
				"//person",
				"//creditcard",
				"//item/name",
				"//open_auction",
			},
		},
	}
}

// openEngine opens one registered engine and loads a fresh copy of the
// workload document into it.
func openEngine(t *testing.T, name string, wl workload, def xmltree.Sign) store.Engine {
	t.Helper()
	eng, err := store.Open(name, store.Options{DocName: wl.name, Schema: wl.schema, Default: def})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(wl.gen()); err != nil {
		t.Fatal(err)
	}
	return eng
}

func signOf(e policy.Effect) xmltree.Sign {
	if e == policy.Allow {
		return xmltree.SignPlus
	}
	return xmltree.SignMinus
}

// TestGoldenEquivalence drives every registered engine through the
// store.Engine interface only and checks its accessible set against the
// brute-force reference semantics, for all four Table 2 combinations on
// both workloads.
func TestGoldenEquivalence(t *testing.T) {
	for _, wl := range workloads() {
		for _, ds := range []policy.Effect{policy.Allow, policy.Deny} {
			for _, cr := range []policy.Effect{policy.Allow, policy.Deny} {
				pol := policy.MustParse(wl.policy)
				pol.Default, pol.Conflict = ds, cr
				ref, err := pol.Semantics(wl.gen())
				if err != nil {
					t.Fatal(err)
				}
				q := core.BuildAnnotationQuery(pol)
				for _, name := range store.Engines() {
					eng := openEngine(t, name, wl, signOf(ds))
					if _, err := eng.Annotate(context.Background(), q); err != nil {
						t.Fatalf("%s/%s ds=%v cr=%v: annotate: %v", wl.name, name, ds, cr, err)
					}
					ids, err := eng.AccessibleIDs()
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ids, ref) {
						t.Errorf("%s/%s ds=%v cr=%v: %d accessible, want %d",
							wl.name, name, ds, cr, len(ids), len(ref))
					}
				}
			}
		}
	}
}

// requestOutcome normalizes one engine's answer to a probe: the granted
// id list, or the fact of denial, or an unexpected error.
type requestOutcome struct {
	Granted bool
	IDs     []int64
}

func probe(t *testing.T, eng store.Engine, q *xpath.Path) requestOutcome {
	t.Helper()
	res, err := eng.Request(context.Background(), q)
	switch {
	case errors.Is(err, store.ErrAccessDenied):
		return requestOutcome{Granted: false}
	case err != nil:
		t.Fatalf("engine %s: request %s: %v", eng.Name(), q, err)
		return requestOutcome{}
	default:
		// The native engine answers with nodes, the relational engines
		// with ids; normalize to the sorted id list.
		ids := res.IDs
		if ids == nil {
			for _, n := range res.Nodes {
				ids = append(ids, n.ID)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if len(ids) == 0 {
			ids = nil
		}
		return requestOutcome{Granted: true, IDs: ids}
	}
}

// TestGoldenRequestsAgree runs the probe queries under every semantics
// combination and requires identical grant/deny outcomes and identical
// granted id sets from every engine.
func TestGoldenRequestsAgree(t *testing.T) {
	for _, wl := range workloads() {
		for _, ds := range []policy.Effect{policy.Allow, policy.Deny} {
			for _, cr := range []policy.Effect{policy.Allow, policy.Deny} {
				pol := policy.MustParse(wl.policy)
				pol.Default, pol.Conflict = ds, cr
				q := core.BuildAnnotationQuery(pol)
				engs := make([]store.Engine, 0, 3)
				for _, name := range store.Engines() {
					eng := openEngine(t, name, wl, signOf(ds))
					if _, err := eng.Annotate(context.Background(), q); err != nil {
						t.Fatal(err)
					}
					engs = append(engs, eng)
				}
				grants := 0
				for _, qs := range wl.queries {
					p := xpath.MustParse(qs)
					want := probe(t, engs[0], p)
					if want.Granted {
						grants++
					}
					for _, eng := range engs[1:] {
						got := probe(t, eng, p)
						if got.Granted != want.Granted || !reflect.DeepEqual(got.IDs, want.IDs) {
							t.Errorf("%s ds=%v cr=%v query %s: %s disagrees with %s (granted %v/%v, %d/%d ids)",
								wl.name, ds, cr, qs, eng.Name(), engs[0].Name(),
								got.Granted, want.Granted, len(got.IDs), len(want.IDs))
						}
					}
				}
				// With everything allowed, the probes must actually be
				// granted — guard against an all-deny vacuous pass.
				if ds == policy.Allow && cr == policy.Allow && grants == 0 {
					t.Errorf("%s ds=allow cr=allow: every probe denied", wl.name)
				}
			}
		}
	}
}

// TestGoldenWhyAgrees checks rule attribution through the full core
// stack: for every backend, Why must name the same deciding rule for the
// same node on both workloads.
func TestGoldenWhyAgrees(t *testing.T) {
	backends := []core.Backend{core.BackendNative, core.BackendRow, core.BackendColumn, core.BackendVector}
	for _, wl := range workloads() {
		type attribution struct {
			Accessible bool
			Deciding   string
		}
		var want map[int64]attribution
		for _, b := range backends {
			pol := policy.MustParse(wl.policy)
			sys, err := core.NewSystem(core.Config{Schema: wl.schema, Policy: pol, Backend: b})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Load(wl.gen()); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Annotate(); err != nil {
				t.Fatal(err)
			}
			decisions, err := sys.Why(xpath.MustParse("//*"))
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[int64]attribution, len(decisions))
			for _, d := range decisions {
				got[d.ID] = attribution{Accessible: d.Accessible, Deciding: d.Deciding.Name}
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s backend %v: rule attribution differs from %v", wl.name, b, backends[0])
			}
		}
	}
}
