package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The engine registry. Each implementation file registers its opener in
// an init function under the backend names the evaluation figures use;
// core resolves Config.Backend through Open and never names a concrete
// engine package. Registering through the seam is also what makes new
// backends additive: a future engine needs only an Opener and a name.

// Opener builds an engine from options.
type Opener func(Options) (Engine, error)

var (
	regMu sync.RWMutex
	// openers maps every accepted name (canonical and alias) to its
	// constructor; canonicalName maps it to the name Engines lists and
	// Engine.Name reports.
	openers       = map[string]Opener{}
	canonicalName = map[string]string{}
)

// Register installs an engine constructor under a canonical name plus
// optional aliases. It panics on duplicates — registration happens in
// init functions, where a clash is a programming error.
func Register(name string, o Opener, aliases ...string) {
	regMu.Lock()
	defer regMu.Unlock()
	for _, n := range append([]string{name}, aliases...) {
		if _, dup := openers[n]; dup {
			panic(fmt.Sprintf("store: engine name %q registered twice", n))
		}
		openers[n] = o
		canonicalName[n] = name
	}
}

// Open builds the named engine. Both canonical names and aliases resolve
// ("xquery" opens the native engine, "monetcol" the column engine).
func Open(name string, o Options) (Engine, error) {
	regMu.RLock()
	op := openers[name]
	regMu.RUnlock()
	if op == nil {
		return nil, fmt.Errorf("store: unknown engine %q (registered: %s)", name, strings.Join(Engines(), ", "))
	}
	return op(o.withDefaults())
}

// Canonical resolves a registered name or alias to its canonical engine
// name; the empty string when unknown.
func Canonical(name string) string {
	regMu.RLock()
	defer regMu.RUnlock()
	return canonicalName[name]
}

// Engines lists the canonical registered engine names, sorted — the
// iteration domain of the cross-backend equivalence suite.
func Engines() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	seen := map[string]bool{}
	out := make([]string, 0, len(canonicalName))
	for _, c := range canonicalName {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}
