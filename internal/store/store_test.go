package store

import (
	"context"
	"strings"
	"testing"

	"xmlac/internal/pool"
)

// Registry tests: the seam's name resolution must cover every backend
// name the evaluation figures use, including the aliases.

func TestRegistryNamesAndAliases(t *testing.T) {
	want := []string{"monetcol", "monetsql", "native", "postgres"}
	got := Engines()
	if len(got) != len(want) {
		t.Fatalf("Engines() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Engines() = %v, want %v", got, want)
		}
	}
	for alias, canonical := range map[string]string{
		"xquery":   "native",
		"native":   "native",
		"monetcol": "monetcol",
		"monetsql": "monetsql",
		"postgres": "postgres",
	} {
		if c := Canonical(alias); c != canonical {
			t.Errorf("Canonical(%q) = %q, want %q", alias, c, canonical)
		}
	}
}

func TestOpenUnknownEngine(t *testing.T) {
	_, err := Open("oracle", Options{})
	if err == nil || !strings.Contains(err.Error(), `unknown engine "oracle"`) {
		t.Fatalf("err = %v", err)
	}
	// The error lists what is registered, so typos are self-diagnosing.
	if !strings.Contains(err.Error(), "native") {
		t.Fatalf("err does not list registered engines: %v", err)
	}
}

func TestOpenNativeByAlias(t *testing.T) {
	eng, err := Open("xquery", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Name() != "native" || eng.Relational() {
		t.Fatalf("Name = %q, Relational = %v", eng.Name(), eng.Relational())
	}
}

func TestRelationalEnginesRequireSchema(t *testing.T) {
	for _, name := range []string{"postgres", "monetsql", "monetcol"} {
		if _, err := Open(name, Options{}); err == nil {
			t.Errorf("Open(%q) without schema succeeded", name)
		}
	}
}

// Catalog tests: routing must be deterministic, add/remove must remap
// only the documents whose winning shard changed, and explicit placement
// must override the hash.

func catalogDocs(n int) []string {
	docs := make([]string, n)
	for i := range docs {
		docs[i] = "doc" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	return docs
}

func TestCatalogRoutingDeterministic(t *testing.T) {
	c1, c2 := NewCatalog(4, nil), NewCatalog(4, nil)
	for _, d := range catalogDocs(40) {
		if c1.ShardOf(d) != c2.ShardOf(d) {
			t.Fatalf("routing of %q differs between identical catalogs", d)
		}
		if got, again := c1.ShardOf(d), c1.ShardOf(d); got != again {
			t.Fatalf("routing of %q not stable: %q then %q", d, got, again)
		}
	}
}

func TestCatalogRoutingSpreads(t *testing.T) {
	c := NewCatalog(4, nil)
	used := map[string]int{}
	for _, d := range catalogDocs(80) {
		used[c.ShardOf(d)]++
	}
	if len(used) != 4 {
		t.Fatalf("80 documents landed on %d of 4 shards: %v", len(used), used)
	}
}

// TestCatalogMinimalRemapOnAdd: rendezvous hashing moves only the
// documents the new shard wins; every other document keeps its shard.
func TestCatalogMinimalRemapOnAdd(t *testing.T) {
	c := NewCatalog(3, nil)
	docs := catalogDocs(60)
	before := map[string]string{}
	for _, d := range docs {
		before[d] = c.ShardOf(d)
	}
	if err := c.AddShard("shard9"); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, d := range docs {
		after := c.ShardOf(d)
		if after != before[d] {
			if after != "shard9" {
				t.Fatalf("%q moved %q → %q, not to the new shard", d, before[d], after)
			}
			moved++
		}
	}
	// Expect roughly 1/4 of the documents to move; anything at all moving
	// to an old shard is the bug this test pins down.
	if moved == 0 || moved == len(docs) {
		t.Fatalf("moved = %d of %d", moved, len(docs))
	}
}

// TestCatalogMinimalRemapOnRemove: only the removed shard's documents
// re-route.
func TestCatalogMinimalRemapOnRemove(t *testing.T) {
	c := NewCatalog(4, nil)
	docs := catalogDocs(60)
	before := map[string]string{}
	for _, d := range docs {
		before[d] = c.ShardOf(d)
	}
	if err := c.RemoveShard("shard2"); err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		after := c.ShardOf(d)
		if before[d] == "shard2" {
			if after == "shard2" {
				t.Fatalf("%q still routes to the removed shard", d)
			}
		} else if after != before[d] {
			t.Fatalf("%q moved %q → %q although its shard survived", d, before[d], after)
		}
	}
}

func TestCatalogShardGuards(t *testing.T) {
	c := NewCatalog(1, nil)
	if err := c.RemoveShard("shard0"); err == nil {
		t.Fatal("removed the last shard")
	}
	if err := c.AddShard("shard0"); err == nil {
		t.Fatal("added a duplicate shard")
	}
	if err := c.RemoveShard("nope"); err == nil {
		t.Fatal("removed an unknown shard")
	}
	if err := c.Place("doc", "nope"); err == nil {
		t.Fatal("placed onto an unknown shard")
	}
}

func TestCatalogExplicitPlacement(t *testing.T) {
	c := NewCatalog(3, nil)
	hashed := c.ShardOf("pinned")
	target := "shard0"
	if hashed == target {
		target = "shard1"
	}
	if err := c.Place("pinned", target); err != nil {
		t.Fatal(err)
	}
	if got := c.ShardOf("pinned"); got != target {
		t.Fatalf("ShardOf(pinned) = %q, want pinned %q", got, target)
	}
	// Removing the pinned shard forgets the placement and falls back to
	// the hash winner among the survivors.
	if err := c.RemoveShard(target); err != nil {
		t.Fatal(err)
	}
	if got := c.ShardOf("pinned"); got == target {
		t.Fatalf("ShardOf(pinned) still %q after shard removal", got)
	}
}

func TestCatalogAttachDetach(t *testing.T) {
	c := NewCatalog(2, nil)
	eng, err := Open("native", Options{DocName: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Attach("a", eng); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach("a", eng); err == nil {
		t.Fatal("duplicate attach succeeded")
	}
	if got := c.Engine("a"); got != eng {
		t.Fatal("Engine(a) is not the attached engine")
	}
	if docs := c.Docs(); len(docs) != 1 || docs[0] != "a" {
		t.Fatalf("Docs = %v", docs)
	}
	c.Detach("a")
	if c.Engine("a") != nil || len(c.Docs()) != 0 {
		t.Fatal("detach did not remove the document")
	}
}

func TestCatalogForEachShard(t *testing.T) {
	for _, pl := range []*pool.Pool{nil, pool.New(4)} {
		c := NewCatalog(4, pl)
		for _, d := range catalogDocs(12) {
			eng, err := Open("native", Options{DocName: d})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Attach(d, eng); err != nil {
				t.Fatal(err)
			}
		}
		seen := map[string]bool{}
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		err := c.ForEachShard(context.Background(), func(_ context.Context, shard string, docs []string) error {
			<-mu
			for _, d := range docs {
				seen[d] = true
			}
			mu <- struct{}{}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 12 {
			t.Fatalf("ForEachShard visited %d of 12 documents", len(seen))
		}
	}
}
