package store

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"xmlac/internal/obs"
	"xmlac/internal/pool"
)

// Catalog is the multi-document layer over the engine seam: it routes
// operations by document name to one of N shards, each an independent
// group of Engine instances, and fans shard-wise work out on a worker
// pool. Placement is rendezvous (highest-random-weight) hashing by
// default — deterministic, and adding or removing a shard only remaps
// the documents whose winning shard changed — with explicit per-document
// placement as an override. This is the ROADMAP's "sharding, batching,
// multi-backend" scaling path: one engine per document keeps shards
// fully isolated (a sign update in one document can never touch
// another), while shared metrics and audit sinks merge the per-shard
// observability streams.
type Catalog struct {
	mu     sync.RWMutex
	shards []string          // shard names, sorted
	placed map[string]string // doc → shard, explicit placement overrides
	docs   map[string]Engine
	pl     *pool.Pool // bounds the cross-shard fan-out; nil = sequential

	docsGauge, shardsGauge *obs.Gauge
	ops                    *obs.Counter
	reg                    *obs.Registry // per-shard latency histograms
}

// NewCatalog creates a catalog with n shards (named "shard0"…"shardN-1";
// n is clamped to at least 1) fanning cross-shard work out on pl (nil
// runs shards sequentially).
func NewCatalog(n int, pl *pool.Pool) *Catalog {
	if n < 1 {
		n = 1
	}
	c := &Catalog{placed: map[string]string{}, docs: map[string]Engine{}, pl: pl}
	for i := 0; i < n; i++ {
		c.shards = append(c.shards, fmt.Sprintf("shard%d", i))
	}
	sort.Strings(c.shards)
	return c
}

// SetMetrics attaches a registry: catalog_docs and catalog_shards gauges,
// a catalog_shard_ops_total counter of per-shard work units, and
// per-shard catalog_shard_seconds{shard=...} latency histograms recorded
// by ForEachShard (the dashboard's shard-heat source).
func (c *Catalog) SetMetrics(r *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = r
	if r == nil {
		c.docsGauge, c.shardsGauge, c.ops = nil, nil, nil
		return
	}
	c.docsGauge = r.Gauge("catalog_docs")
	c.shardsGauge = r.Gauge("catalog_shards")
	c.ops = r.Counter("catalog_shard_ops_total")
	c.updateGaugesLocked()
}

func (c *Catalog) updateGaugesLocked() {
	c.docsGauge.Set(float64(len(c.docs)))
	c.shardsGauge.Set(float64(len(c.shards)))
}

// AddShard registers a new shard name. Routing is re-evaluated lazily:
// rendezvous hashing moves only the documents the new shard now wins.
func (c *Catalog) AddShard(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.shards {
		if s == name {
			return fmt.Errorf("store: shard %q already exists", name)
		}
	}
	c.shards = append(c.shards, name)
	sort.Strings(c.shards)
	c.updateGaugesLocked()
	return nil
}

// RemoveShard drops a shard name; its documents re-route to the
// remaining shards (rendezvous hashing touches only those documents).
// Explicit placements onto the shard are forgotten. The last shard
// cannot be removed.
func (c *Catalog) RemoveShard(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.shards) <= 1 {
		return fmt.Errorf("store: cannot remove the last shard")
	}
	i := sort.SearchStrings(c.shards, name)
	if i >= len(c.shards) || c.shards[i] != name {
		return fmt.Errorf("store: unknown shard %q", name)
	}
	c.shards = append(c.shards[:i], c.shards[i+1:]...)
	for doc, s := range c.placed {
		if s == name {
			delete(c.placed, doc)
		}
	}
	c.updateGaugesLocked()
	return nil
}

// Shards lists the shard names, sorted.
func (c *Catalog) Shards() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.shards...)
}

// Place pins a document to a shard, overriding the hash routing.
func (c *Catalog) Place(doc, shard string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := sort.SearchStrings(c.shards, shard)
	if i >= len(c.shards) || c.shards[i] != shard {
		return fmt.Errorf("store: unknown shard %q", shard)
	}
	c.placed[doc] = shard
	return nil
}

// ShardOf returns the shard a document routes to: its explicit placement
// when pinned, the rendezvous-hash winner otherwise.
func (c *Catalog) ShardOf(doc string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.shardOfLocked(doc)
}

func (c *Catalog) shardOfLocked(doc string) string {
	if s, ok := c.placed[doc]; ok {
		return s
	}
	// Rendezvous hashing: score every (doc, shard) pair, highest wins.
	// Each document's scores are independent of the shard set, so adding
	// or removing a shard only remaps documents whose winner changed.
	best, bestScore := "", uint64(0)
	for _, s := range c.shards {
		h := fnv.New64a()
		h.Write([]byte(doc))
		h.Write([]byte{0})
		h.Write([]byte(s))
		if score := h.Sum64(); best == "" || score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// Attach registers a document's engine in the catalog.
func (c *Catalog) Attach(doc string, e Engine) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.docs[doc]; dup {
		return fmt.Errorf("store: document %q already attached", doc)
	}
	c.docs[doc] = e
	c.updateGaugesLocked()
	return nil
}

// Detach removes a document (and any explicit placement).
func (c *Catalog) Detach(doc string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.docs, doc)
	delete(c.placed, doc)
	c.updateGaugesLocked()
}

// Engine returns the named document's engine, or nil.
func (c *Catalog) Engine(doc string) Engine {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.docs[doc]
}

// Docs lists the attached document names, sorted.
func (c *Catalog) Docs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.docs))
	for d := range c.docs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Placement groups the attached documents by the shard they route to
// (shards without documents are omitted); document lists are sorted.
func (c *Catalog) Placement() map[string][]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := map[string][]string{}
	for d := range c.docs {
		s := c.shardOfLocked(d)
		out[s] = append(out[s], d)
	}
	for _, docs := range out {
		sort.Strings(docs)
	}
	return out
}

// ForEachShard fans fn out across the shards holding documents: one call
// per non-empty shard, concurrent up to the pool bound, each receiving
// the shard name and its sorted document list. Documents within a shard
// are processed by one worker — the shard is the unit of parallelism.
// The first error (by shard order) is returned.
//
// A span carried in ctx (obs.ContextWithSpan) parents one "shard" child
// span per fan-out unit — carrying the shard name and document count —
// and each unit's context hands that child to fn, so a catalog-wide
// operation renders as a single connected tree no matter how the pool
// schedules the shards. Each unit's wall time also feeds the shard's
// catalog_shard_seconds histogram when metrics are attached.
func (c *Catalog) ForEachShard(ctx context.Context, fn func(ctx context.Context, shard string, docs []string) error) error {
	placement := c.Placement()
	shards := make([]string, 0, len(placement))
	for s := range placement {
		shards = append(shards, s)
	}
	sort.Strings(shards)
	c.mu.RLock()
	pl, ops, reg := c.pl, c.ops, c.reg
	c.mu.RUnlock()
	return pl.ForEachCtx(ctx, len(shards), func(ctx context.Context, i int) error {
		ops.Inc()
		shard := shards[i]
		sp, ctx := obs.StartCtx(ctx, "shard")
		sp.SetAttr("shard", shard).SetAttr("docs", len(placement[shard]))
		start := time.Now()
		err := fn(ctx, shard, placement[shard])
		reg.Histogram(fmt.Sprintf("catalog_shard_seconds{shard=%q}", shard)).
			ObserveDuration(time.Since(start))
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.Finish()
		return err
	})
}
