package store

import (
	"errors"
	"fmt"

	"xmlac/internal/xmltree"
)

// ErrAccessDenied is returned when a request touches an inaccessible
// node. The error text is frozen API: it predates the store seam (the
// requester lived in package core) and the golden reference-equivalence
// tests compare denial messages verbatim.
var ErrAccessDenied = errors.New("core: access denied")

// DeniedError is the concrete denial returned by the request paths: it
// wraps ErrAccessDenied (errors.Is keeps working) and carries the first
// inaccessible node, so the audit trail can attribute the denial to the
// deciding rule without parsing error text.
type DeniedError struct {
	// ID is the universal id of the inaccessible node.
	ID int64
	// Label is the node's element label; empty on relational denials,
	// where the store only knows the id (matching the paper's
	// universal-identifier iteration).
	Label string
	// Query is set instead of ID/Label when the denial was decided
	// statically — the enforceability checker refused the query from its
	// shape alone, so no concrete node was ever identified (and no store
	// was touched).
	Query string
}

// Error reproduces the exact denial texts the request paths have always
// emitted — the golden reference-equivalence tests compare them verbatim.
// Static denials carry the refused query instead of a node.
func (e *DeniedError) Error() string {
	if e.Query != "" {
		return fmt.Sprintf("%v: query %s is statically denied by the policy", ErrAccessDenied, e.Query)
	}
	if e.Label != "" {
		return fmt.Sprintf("%v: node %d (%s) is not accessible", ErrAccessDenied, e.ID, e.Label)
	}
	return fmt.Sprintf("%v: node %d is not accessible", ErrAccessDenied, e.ID)
}

// Unwrap makes errors.Is(err, ErrAccessDenied) hold.
func (e *DeniedError) Unwrap() error { return ErrAccessDenied }

// RequestResult is a granted request's answer.
type RequestResult struct {
	// Nodes are the matched nodes (native store requests).
	Nodes []*xmltree.Node
	// IDs are the matched universal identifiers, ascending (relational
	// requests).
	IDs []int64
	// Checked is how many distinct nodes were access-checked. A
	// translated query may return the same universal id once per
	// qualifier witness; matches are deduplicated before checking on
	// every backend, so Checked always counts distinct matched nodes.
	Checked int
}
