package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses an XPath expression in the paper's fragment. Both absolute
// paths (queries, rule resources) and relative paths (qualifiers) are
// accepted; use the result's Absolute field to distinguish them.
func Parse(input string) (*Path, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &pathParser{input: input, toks: toks}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, p.errf("trailing input after expression")
	}
	return path, nil
}

// MustParse is Parse but panics on error; for compile-time constant
// expressions in tests and fixtures.
func MustParse(input string) *Path {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

type tokKind uint8

const (
	tokSlash      tokKind = iota // /
	tokSlashSlash                // //
	tokName                      // element name or *
	tokDot                       // .
	tokDotSlash2                 // .//
	tokLBracket                  // [
	tokRBracket                  // ]
	tokAnd                       // and
	tokOr                        // or
	tokLParen                    // (
	tokRParen                    // )
	tokOp                        // = != < <= > >=
	tokString                    // quoted literal
	tokNumber                    // numeric literal
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '/':
			if i+1 < n && input[i+1] == '/' {
				toks = append(toks, token{tokSlashSlash, "//", i})
				i += 2
			} else {
				toks = append(toks, token{tokSlash, "/", i})
				i++
			}
		case c == '.':
			if i+2 < n && input[i+1] == '/' && input[i+2] == '/' {
				toks = append(toks, token{tokDotSlash2, ".//", i})
				i += 3
			} else if i+1 < n && (input[i+1] >= '0' && input[i+1] <= '9') {
				// A number like .5
				j := i + 1
				for j < n && input[j] >= '0' && input[j] <= '9' {
					j++
				}
				toks = append(toks, token{tokNumber, input[i:j], i})
				i = j
			} else {
				toks = append(toks, token{tokDot, ".", i})
				i++
			}
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", i})
			i++
		case c == '*':
			toks = append(toks, token{tokName, "*", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("xpath: offset %d: unexpected '!'", i)
			}
		case c == '<' || c == '>':
			op := string(c)
			i++
			if i < n && input[i] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i - len(op)})
		case c == '"' || c == '\'':
			q := c
			j := i + 1
			for j < n && input[j] != q {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("xpath: offset %d: unterminated string literal", i)
			}
			toks = append(toks, token{tokString, input[i+1 : j], i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < n && ((input[j] >= '0' && input[j] <= '9') || input[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isNameStart(c):
			j := i
			for j < n && isNameChar(input[j]) {
				j++
			}
			word := input[i:j]
			switch word {
			case "and":
				toks = append(toks, token{tokAnd, word, i})
			case "or":
				toks = append(toks, token{tokOr, word, i})
			default:
				toks = append(toks, token{tokName, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("xpath: offset %d: unexpected character %q", i, string(c))
		}
	}
	return toks, nil
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == ':' || (c >= '0' && c <= '9')
}

type pathParser struct {
	input string
	toks  []token
	pos   int
}

func (p *pathParser) eof() bool { return p.pos >= len(p.toks) }

func (p *pathParser) peek() (token, bool) {
	if p.eof() {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *pathParser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *pathParser) accept(k tokKind) (token, bool) {
	if t, ok := p.peek(); ok && t.kind == k {
		p.pos++
		return t, true
	}
	return token{}, false
}

func (p *pathParser) errf(format string, args ...any) error {
	off := len(p.input)
	if t, ok := p.peek(); ok {
		off = t.pos
	}
	return fmt.Errorf("xpath: offset %d in %q: %s", off, p.input, fmt.Sprintf(format, args...))
}

// parsePath parses an absolute or relative path.
func (p *pathParser) parsePath() (*Path, error) {
	path := &Path{}
	firstAxis := Child
	switch t, ok := p.peek(); {
	case !ok:
		return nil, p.errf("empty expression")
	case t.kind == tokSlashSlash:
		p.pos++
		path.Absolute = true
		firstAxis = Descendant
	case t.kind == tokSlash:
		p.pos++
		path.Absolute = true
	case t.kind == tokDotSlash2:
		p.pos++
		firstAxis = Descendant
	case t.kind == tokDot:
		p.pos++
		// Bare "." — only valid alone (a self qualifier).
		if !p.eofOrPredEnd() {
			return nil, p.errf("'.' must stand alone in a qualifier")
		}
		return path, nil
	}
	step, err := p.parseStep(firstAxis)
	if err != nil {
		return nil, err
	}
	path.Steps = append(path.Steps, step)
	for {
		var axis Axis
		if _, ok := p.accept(tokSlashSlash); ok {
			axis = Descendant
		} else if _, ok := p.accept(tokSlash); ok {
			axis = Child
		} else {
			break
		}
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
	}
	return path, nil
}

// eofOrPredEnd reports whether the parser is at end of input or at a token
// that legitimately terminates a qualifier path (']' or ')', a comparison,
// 'and' or 'or'), without consuming it.
func (p *pathParser) eofOrPredEnd() bool {
	t, ok := p.peek()
	if !ok {
		return true
	}
	return t.kind == tokRBracket || t.kind == tokRParen || t.kind == tokOp ||
		t.kind == tokAnd || t.kind == tokOr
}

func (p *pathParser) parseStep(axis Axis) (*Step, error) {
	t, ok := p.next()
	if !ok || t.kind != tokName {
		p.pos-- // report at the offending token
		if !ok {
			p.pos = len(p.toks)
		}
		return nil, p.errf("expected element name or *")
	}
	step := &Step{Axis: axis, Test: t.text}
	for {
		if _, ok := p.accept(tokLBracket); !ok {
			break
		}
		q, err := p.parseQualifier()
		if err != nil {
			return nil, err
		}
		if _, ok := p.accept(tokRBracket); !ok {
			return nil, p.errf("expected ']'")
		}
		step.Preds = append(step.Preds, q)
	}
	return step, nil
}

// parseQualifier parses q ::= orExpr, with the standard XPath precedence:
// "and" binds tighter than "or", and parentheses group.
func (p *pathParser) parseQualifier() (*Pred, error) {
	return p.parseOrExpr()
}

func (p *pathParser) parseOrExpr() (*Pred, error) {
	left, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.accept(tokOr); !ok {
			return left, nil
		}
		right, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		left = &Pred{Kind: Or, Left: left, Right: right}
	}
}

func (p *pathParser) parseAndExpr() (*Pred, error) {
	left, err := p.parsePrimaryPred()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.accept(tokAnd); !ok {
			return left, nil
		}
		right, err := p.parsePrimaryPred()
		if err != nil {
			return nil, err
		}
		left = &Pred{Kind: And, Left: left, Right: right}
	}
}

func (p *pathParser) parsePrimaryPred() (*Pred, error) {
	if _, ok := p.accept(tokLParen); ok {
		q, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if _, ok := p.accept(tokRParen); !ok {
			return nil, p.errf("expected ')'")
		}
		return q, nil
	}
	return p.parseComparand()
}

func (p *pathParser) parseComparand() (*Pred, error) {
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if path.Absolute {
		return nil, p.errf("absolute paths are not allowed inside qualifiers")
	}
	t, ok := p.peek()
	if !ok || t.kind != tokOp {
		return &Pred{Kind: Exists, Path: path}, nil
	}
	p.pos++
	op, err := parseOp(t.text)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &Pred{Kind: Cmp, Path: path, Op: op, Value: lit}, nil
}

func parseOp(s string) (CmpOp, error) {
	switch s {
	case "=":
		return Eq, nil
	case "!=":
		return Ne, nil
	case "<":
		return Lt, nil
	case "<=":
		return Le, nil
	case ">":
		return Gt, nil
	case ">=":
		return Ge, nil
	}
	return 0, fmt.Errorf("unknown operator %q", s)
}

func (p *pathParser) parseLiteral() (Literal, error) {
	t, ok := p.next()
	if !ok {
		return Literal{}, p.errf("expected literal")
	}
	switch t.kind {
	case tokString:
		return Literal{Str: t.text}, nil
	case tokNumber:
		f, err := strconv.ParseFloat(strings.TrimSuffix(t.text, "."), 64)
		if err != nil {
			return Literal{}, p.errf("invalid number %q", t.text)
		}
		return Literal{IsNum: true, Num: f}, nil
	default:
		p.pos--
		return Literal{}, p.errf("expected string or number literal")
	}
}
