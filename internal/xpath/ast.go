// Package xpath implements the XPath fragment used by the paper's queries
// and access-control rules (Section 2.2):
//
//	Paths      p ::= axis::ntst | p[q] | p/p
//	Qualifiers q ::= p | q and q | p op d
//	Axes    axis ::= child | descendant
//	Node test ntst ::= l | *
//
// following the standard abbreviated syntax (/, //, *, [...]). Two
// supported extensions go beyond the formal grammar: the comparison
// operators !=, <, <=, > and >= (the paper's own rule R8 uses
// //regular[bill > 1000]), and disjunctive qualifiers "q or q" with
// parentheses (toward the "larger XPath fragments" the paper's conclusion
// proposes) — the containment machinery handles disjunction by DNF
// rewriting, see dnf.go.
//
// The package provides a lexer, a recursive-descent parser, a canonical
// printer (parse∘print is the identity on canonical forms), and an
// evaluator over xmltree documents implementing the node-set semantics
// [[p]](T) of the paper.
package xpath

import (
	"strconv"
	"strings"
)

// Axis is an XPath axis. The fragment uses child and descendant; Self exists
// only to represent the bare "." qualifier.
type Axis uint8

const (
	// Child is the child axis (the "/" separator of the abbreviated form).
	Child Axis = iota
	// Descendant is the descendant axis (the "//" separator).
	Descendant
	// Self is the context node itself (the "." abbreviation); it only
	// appears as the sole step of a qualifier path.
	Self
)

// Wildcard is the node test that matches any element label.
const Wildcard = "*"

// Path is a parsed XPath expression: a sequence of steps, absolute (starting
// at the document root) or relative (starting at a context node, as
// qualifiers do).
type Path struct {
	// Absolute reports whether the path begins with "/" or "//".
	Absolute bool
	// Steps are the location steps in order. An absolute path with zero
	// steps is invalid; a relative path with zero steps is the bare "."
	// qualifier.
	Steps []*Step
}

// Step is one location step: an axis, a node test, and zero or more
// qualifiers.
type Step struct {
	Axis Axis
	// Test is an element label or Wildcard.
	Test string
	// Preds are the step's qualifiers, all of which must hold.
	Preds []*Pred
}

// PredKind discriminates qualifier forms.
type PredKind uint8

const (
	// Exists is the qualifier p: some node is reachable via the path.
	Exists PredKind = iota
	// Cmp is the qualifier p op d: some node reachable via the path has a
	// text value for which the comparison holds.
	Cmp
	// And is the conjunction q and q.
	And
	// Or is the disjunction q or q — an extension beyond the paper's formal
	// grammar (its conclusion calls for larger XPath fragments); the
	// containment machinery handles it by DNF rewriting.
	Or
)

// CmpOp is a comparison operator in a value qualifier.
type CmpOp uint8

const (
	// Eq is "=".
	Eq CmpOp = iota
	// Ne is "!=".
	Ne
	// Lt is "<".
	Lt
	// Le is "<=".
	Le
	// Gt is ">".
	Gt
	// Ge is ">=".
	Ge
)

// String renders the operator in XPath syntax.
func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Literal is the constant d of a value qualifier: either a string from the
// data domain or a number.
type Literal struct {
	// IsNum reports whether the literal was written as a number.
	IsNum bool
	// Num is the numeric value when IsNum.
	Num float64
	// Str is the string value when !IsNum.
	Str string
}

// String renders the literal in XPath syntax (numbers bare, strings
// quoted). XPath 1.0 string literals have no escape syntax, so the quote
// character is chosen to avoid the value's own quotes; a value containing
// both quote characters is not expressible and its double quotes are
// replaced to keep String total.
func (l Literal) String() string {
	if l.IsNum {
		return strconv.FormatFloat(l.Num, 'f', -1, 64)
	}
	switch {
	case !strings.Contains(l.Str, `"`):
		return `"` + l.Str + `"`
	case !strings.Contains(l.Str, "'"):
		return "'" + l.Str + "'"
	default:
		return `"` + strings.ReplaceAll(l.Str, `"`, "'") + `"`
	}
}

// Pred is a qualifier.
type Pred struct {
	Kind PredKind
	// Path is the qualifier path for Exists and Cmp.
	Path *Path
	// Op and Value complete a Cmp qualifier.
	Op    CmpOp
	Value Literal
	// Left and Right are the operands of an And or Or qualifier.
	Left, Right *Pred
}

// String renders the path in canonical abbreviated XPath syntax.
func (p *Path) String() string {
	var b strings.Builder
	p.write(&b)
	return b.String()
}

func (p *Path) write(b *strings.Builder) {
	if p == nil {
		return
	}
	if len(p.Steps) == 0 {
		if !p.Absolute {
			b.WriteString(".")
		} else {
			b.WriteString("/")
		}
		return
	}
	for i, s := range p.Steps {
		switch s.Axis {
		case Child:
			if i > 0 || p.Absolute {
				b.WriteString("/")
			}
		case Descendant:
			if i == 0 && !p.Absolute {
				b.WriteString(".//")
			} else {
				b.WriteString("//")
			}
		case Self:
			b.WriteString(".")
			continue
		}
		b.WriteString(s.Test)
		for _, q := range s.Preds {
			b.WriteString("[")
			q.write(b)
			b.WriteString("]")
		}
	}
}

func (q *Pred) write(b *strings.Builder) {
	switch q.Kind {
	case Exists:
		q.Path.write(b)
	case Cmp:
		q.Path.write(b)
		b.WriteString(" " + q.Op.String() + " ")
		b.WriteString(q.Value.String())
	case And:
		// "and" binds tighter than "or": parenthesize or-operands.
		q.Left.writeOperand(b, true)
		b.WriteString(" and ")
		q.Right.writeOperand(b, true)
	case Or:
		q.Left.write(b)
		b.WriteString(" or ")
		q.Right.write(b)
	}
}

// writeOperand writes q, parenthesizing an Or under an And.
func (q *Pred) writeOperand(b *strings.Builder, underAnd bool) {
	if underAnd && q.Kind == Or {
		b.WriteString("(")
		q.write(b)
		b.WriteString(")")
		return
	}
	q.write(b)
}

// Clone deep-copies the path.
func (p *Path) Clone() *Path {
	if p == nil {
		return nil
	}
	out := &Path{Absolute: p.Absolute, Steps: make([]*Step, len(p.Steps))}
	for i, s := range p.Steps {
		ns := &Step{Axis: s.Axis, Test: s.Test}
		for _, q := range s.Preds {
			ns.Preds = append(ns.Preds, q.clone())
		}
		out.Steps[i] = ns
	}
	return out
}

func (q *Pred) clone() *Pred {
	if q == nil {
		return nil
	}
	return &Pred{
		Kind:  q.Kind,
		Path:  q.Path.Clone(),
		Op:    q.Op,
		Value: q.Value,
		Left:  q.Left.clone(),
		Right: q.Right.clone(),
	}
}

// HasPredicates reports whether any step of the path carries a qualifier.
func (p *Path) HasPredicates() bool {
	for _, s := range p.Steps {
		if len(s.Preds) > 0 {
			return true
		}
	}
	return false
}

// HasDescendant reports whether any step (including qualifier paths) uses
// the descendant axis.
func (p *Path) HasDescendant() bool {
	for _, s := range p.Steps {
		if s.Axis == Descendant {
			return true
		}
		for _, q := range s.Preds {
			if q.hasDescendant() {
				return true
			}
		}
	}
	return false
}

func (q *Pred) hasDescendant() bool {
	switch q.Kind {
	case Exists, Cmp:
		return q.Path.HasDescendant()
	case And, Or:
		return q.Left.hasDescendant() || q.Right.hasDescendant()
	}
	return false
}

// LastLabel returns the node test of the final step, or Wildcard for the
// bare "." path.
func (p *Path) LastLabel() string {
	if len(p.Steps) == 0 {
		return Wildcard
	}
	return p.Steps[len(p.Steps)-1].Test
}

// StripPredicates returns a copy of the path with every qualifier removed —
// the "main path" used by rule expansion.
func (p *Path) StripPredicates() *Path {
	out := p.Clone()
	for _, s := range out.Steps {
		s.Preds = nil
	}
	return out
}
