package xpath

import (
	"strings"

	"xmlac/internal/xmltree"
)

// Query rewriting (after Mahfoud–Imine, "Secure Querying of Recursive XML
// Views", arXiv:1112.2605): instead of materializing sign annotations,
// the policy's accessibility condition is composed with the user query
// and the composition is evaluated over the *unannotated* document. A
// Rewriter holds the compiled form of one read policy — the allow and
// deny resource paths plus the Table 2 default-semantics and
// conflict-resolution bits — and provides
//
//   - the membership algebra (Accessible) that turns a node's allow/deny
//     scope membership into its accessibility,
//   - set evaluation over a tree (Sets, AccessibleSet), and
//   - the textual safe-query rendering (Rewrite) shown by plans and
//     EXPLAIN-style tooling.
//
// Unlike schema-aware sign expansion, nothing here enumerates schema
// paths, so the rewriter serves recursive DTDs.

// Rewriter is one policy compiled for rewriting enforcement.
type Rewriter struct {
	// Allow and Deny are the resources of the positive and negative read
	// rules.
	Allow, Deny []*Path
	// DefaultAllow is ds = "+"; ConflictAllow is cr = "+".
	DefaultAllow  bool
	ConflictAllow bool
}

// Accessible applies the Table 2 membership algebra: given whether a node
// lies in the allow-scope union A and the deny-scope union D, it reports
// the node's accessibility.
//
//	ds=+ cr=+  U − (D − A):  ¬(inD ∧ ¬inA)
//	ds=− cr=+  A:            inA
//	ds=+ cr=−  U − D:        ¬inD
//	ds=− cr=−  A − D:        inA ∧ ¬inD
func (r *Rewriter) Accessible(inAllow, inDeny bool) bool {
	switch {
	case r.DefaultAllow && r.ConflictAllow:
		return !(inDeny && !inAllow)
	case !r.DefaultAllow && r.ConflictAllow:
		return inAllow
	case r.DefaultAllow && !r.ConflictAllow:
		return !inDeny
	default:
		return inAllow && !inDeny
	}
}

// Sets evaluates the allow and deny scope unions over the unannotated
// tree, keyed by universal identifier.
func (r *Rewriter) Sets(doc *xmltree.Document) (allow, deny map[int64]bool, err error) {
	allow, err = evalUnion(r.Allow, doc)
	if err != nil {
		return nil, nil, err
	}
	deny, err = evalUnion(r.Deny, doc)
	if err != nil {
		return nil, nil, err
	}
	return allow, deny, nil
}

// AccessibleSet evaluates the full accessible element set of the tree
// under the policy — the rewriting counterpart of reading materialized
// signs back.
func (r *Rewriter) AccessibleSet(doc *xmltree.Document) (map[int64]bool, error) {
	allow, deny, err := r.Sets(doc)
	if err != nil {
		return nil, err
	}
	out := map[int64]bool{}
	for _, n := range doc.Elements() {
		if r.Accessible(allow[n.ID], deny[n.ID]) {
			out[n.ID] = true
		}
	}
	return out, nil
}

func evalUnion(paths []*Path, doc *xmltree.Document) (map[int64]bool, error) {
	out := map[int64]bool{}
	for _, p := range paths {
		nodes, err := Eval(p, doc)
		if err != nil {
			return nil, err
		}
		for _, n := range nodes {
			out[n.ID] = true
		}
	}
	return out, nil
}

// AccessExpr renders the policy's accessible set as a set-algebra
// expression over the rule paths, in the UNION/EXCEPT vocabulary of the
// annotation queries (U stands for the universe of element nodes).
func (r *Rewriter) AccessExpr() string {
	a := unionText(r.Allow)
	d := unionText(r.Deny)
	switch {
	case r.DefaultAllow && r.ConflictAllow:
		if d == "" {
			return "U"
		}
		if a == "" {
			return "U except " + d
		}
		return "U except (" + d + " except " + a + ")"
	case !r.DefaultAllow && r.ConflictAllow:
		if a == "" {
			return "()"
		}
		return a
	case r.DefaultAllow && !r.ConflictAllow:
		if d == "" {
			return "U"
		}
		return "U except " + d
	default:
		if a == "" {
			return "()"
		}
		if d == "" {
			return a
		}
		return "(" + a + ") except " + d
	}
}

func unionText(paths []*Path) string {
	if len(paths) == 0 {
		return ""
	}
	parts := make([]string, len(paths))
	for i, p := range paths {
		parts[i] = p.String()
	}
	return strings.Join(parts, " union ")
}

// Rewrite renders the safe query: the user query intersected with the
// policy's accessible set. This is the composed form the rewriting
// enforcer conceptually evaluates (its engine implementation computes the
// same intersection from the raw match set and the scope unions).
func (r *Rewriter) Rewrite(q *Path) string {
	return "(" + q.String() + ") intersect (" + r.AccessExpr() + ")"
}
