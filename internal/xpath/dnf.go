package xpath

// DNF rewriting. Disjunctive qualifiers (the Or extension) are outside the
// tree-pattern formalism the containment, expansion and SQL-translation
// machinery is built on. DNF eliminates them syntactically:
//
//	p[q1 or q2] ≡ p[q1] ∪ p[q2]
//
// so every expression rewrites into finitely many or-free expressions whose
// union has the original's semantics. Downstream consumers handle a
// disjunctive expression by processing each disjunct: containment requires
// every left disjunct to be contained in some right disjunct (sound),
// expansion and SQL translation take the union of the per-disjunct results
// (exact).

// maxDisjuncts caps the DNF blow-up; Or chains multiply.
const maxDisjuncts = 256

// HasOr reports whether any qualifier (at any nesting depth) is a
// disjunction.
func (p *Path) HasOr() bool {
	for _, s := range p.Steps {
		for _, q := range s.Preds {
			if q.hasOr() {
				return true
			}
		}
	}
	return false
}

func (q *Pred) hasOr() bool {
	switch q.Kind {
	case Or:
		return true
	case And:
		return q.Left.hasOr() || q.Right.hasOr()
	case Exists, Cmp:
		return q.Path.HasOr()
	}
	return false
}

// DNF rewrites the expression into or-free disjuncts whose union is
// equivalent to p. An or-free expression returns itself (not a copy). The
// second result is false when the rewriting would exceed maxDisjuncts; the
// expression is then left as-is and callers must fall back to conservative
// handling.
func (p *Path) DNF() ([]*Path, bool) {
	if !p.HasOr() {
		return []*Path{p}, true
	}
	// Per step, the alternatives are the cross products of its qualifiers'
	// conjunction lists.
	stepAlts := make([][][]*Pred, len(p.Steps))
	for i, s := range p.Steps {
		alts := [][]*Pred{nil} // one empty conjunction
		for _, q := range s.Preds {
			qAlts, ok := q.dnf()
			if !ok {
				return nil, false
			}
			var next [][]*Pred
			for _, a := range alts {
				for _, qa := range qAlts {
					conj := make([]*Pred, 0, len(a)+len(qa))
					conj = append(conj, a...)
					conj = append(conj, qa...)
					next = append(next, conj)
				}
			}
			if len(next) > maxDisjuncts {
				return nil, false
			}
			alts = next
		}
		stepAlts[i] = alts
	}
	// Cross product across steps.
	out := []*Path{{Absolute: p.Absolute}}
	for i, s := range p.Steps {
		var next []*Path
		for _, partial := range out {
			for _, alt := range stepAlts[i] {
				np := &Path{Absolute: partial.Absolute, Steps: make([]*Step, len(partial.Steps), len(partial.Steps)+1)}
				copy(np.Steps, partial.Steps)
				np.Steps = append(np.Steps, &Step{Axis: s.Axis, Test: s.Test, Preds: alt})
				next = append(next, np)
			}
		}
		if len(next) > maxDisjuncts {
			return nil, false
		}
		out = next
	}
	return out, true
}

// dnf rewrites a qualifier into alternative conjunction lists of or-free
// predicates.
func (q *Pred) dnf() ([][]*Pred, bool) {
	switch q.Kind {
	case Or:
		l, ok := q.Left.dnf()
		if !ok {
			return nil, false
		}
		r, ok := q.Right.dnf()
		if !ok {
			return nil, false
		}
		out := append(l, r...)
		if len(out) > maxDisjuncts {
			return nil, false
		}
		return out, true
	case And:
		l, ok := q.Left.dnf()
		if !ok {
			return nil, false
		}
		r, ok := q.Right.dnf()
		if !ok {
			return nil, false
		}
		var out [][]*Pred
		for _, a := range l {
			for _, b := range r {
				conj := make([]*Pred, 0, len(a)+len(b))
				conj = append(conj, a...)
				conj = append(conj, b...)
				out = append(out, conj)
			}
		}
		if len(out) > maxDisjuncts {
			return nil, false
		}
		return out, true
	case Exists, Cmp:
		// Disjunctions may hide inside the qualifier path's own nested
		// qualifiers: [a[b or c]/d] ≡ [a[b]/d] ∪ [a[c]/d].
		paths, ok := q.Path.dnfRelative()
		if !ok {
			return nil, false
		}
		out := make([][]*Pred, len(paths))
		for i, pp := range paths {
			out[i] = []*Pred{{Kind: q.Kind, Path: pp, Op: q.Op, Value: q.Value}}
		}
		return out, true
	}
	return nil, false
}

// dnfRelative is DNF for a (relative) qualifier path.
func (p *Path) dnfRelative() ([]*Path, bool) {
	if !p.HasOr() {
		return []*Path{p}, true
	}
	return p.DNF()
}
