package xpath

import (
	"reflect"
	"testing"
)

// Tests for the disjunction extension (q or q with parentheses), which goes
// beyond the paper's formal fragment.

func TestParseOrPrecedence(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/a[b or c]", "/a[b or c]"},
		{"/a[b or c or d]", "/a[b or c or d]"},
		{"/a[b and c or d]", "/a[b and c or d]"},     // (b∧c)∨d
		{"/a[b or c and d]", "/a[b or c and d]"},     // b∨(c∧d)
		{"/a[(b or c) and d]", "/a[(b or c) and d]"}, // parens preserved
		{"/a[( b or c ) and ( d or e )]", "/a[(b or c) and (d or e)]"},
		{"/a[b = 1 or c = 2]", "/a[b = 1 or c = 2]"},
		{`/a[b = "x" or .//c]`, `/a[b = "x" or .//c]`},
		{"/a[(b)]", "/a[b]"}, // redundant parens normalize away
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := p.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Canonical forms are fixed points.
		p2, err := Parse(p.String())
		if err != nil || p2.String() != p.String() {
			t.Errorf("reparse of %q failed: %v", p.String(), err)
		}
	}
}

func TestParseOrErrors(t *testing.T) {
	for _, c := range []string{
		"/a[b or]",
		"/a[or b]",
		"/a[(b or c]",
		"/a[b or c)]",
		"/a[()]",
	} {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): expected error", c)
		}
	}
}

func TestEvalOr(t *testing.T) {
	doc := mustDoc(t, `<r><a><b/></a><a><c/></a><a><d/></a><a><b/><c/></a></r>`)
	cases := []struct {
		expr string
		n    int
	}{
		{"//a[b or c]", 3},
		{"//a[b and c]", 1},
		{"//a[b or c or d]", 4},
		{"//a[(b or c) and d]", 0},
		{"//a[b or (c and d)]", 2},
	}
	for _, c := range cases {
		res, err := Eval(MustParse(c.expr), doc)
		if err != nil {
			t.Errorf("Eval(%q): %v", c.expr, err)
			continue
		}
		if len(res) != c.n {
			t.Errorf("Eval(%q) matched %d, want %d", c.expr, len(res), c.n)
		}
	}
}

func TestEvalOrValueComparisons(t *testing.T) {
	doc := mustDoc(t, `<r><p><v>5</v></p><p><v>50</v></p><p><w>5</w></p></r>`)
	res, err := Eval(MustParse("//p[v = 5 or w = 5]"), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("matched %d", len(res))
	}
}

func TestHasOr(t *testing.T) {
	if !MustParse("/a[b or c]").HasOr() {
		t.Error("top-level or not detected")
	}
	if !MustParse("/a[b[c or d]]").HasOr() {
		t.Error("nested or not detected")
	}
	if !MustParse("/a[b[c or d] and e]").HasOr() {
		t.Error("or under and not detected")
	}
	if MustParse("/a[b and c]").HasOr() {
		t.Error("false positive")
	}
}

func dnfStrings(t *testing.T, expr string) []string {
	t.Helper()
	paths, ok := MustParse(expr).DNF()
	if !ok {
		t.Fatalf("DNF(%s) overflowed", expr)
	}
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = p.String()
	}
	return out
}

func TestDNF(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"/a[b or c]", []string{"/a[b]", "/a[c]"}},
		{"/a[b and c]", []string{"/a[b and c]"}},
		{"/a[b or c][d]", []string{"/a[b][d]", "/a[c][d]"}},
		{"/a[(b or c) and d]", []string{"/a[b][d]", "/a[c][d]"}}, // [q1][q2] ≡ [q1 and q2]
		{"/a[b or c]/e[f or g]", []string{"/a[b]/e[f]", "/a[b]/e[g]", "/a[c]/e[f]", "/a[c]/e[g]"}},
		{"/a[b[c or d]]", []string{"/a[b[c]]", "/a[b[d]]"}},
		{"/a[b = 1 or b = 2]", []string{"/a[b = 1]", "/a[b = 2]"}},
	}
	for _, c := range cases {
		got := dnfStrings(t, c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("DNF(%s) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestDNFEquivalentToOriginal: evaluating the union of the disjuncts gives
// exactly the original result on a sample document.
func TestDNFEquivalentToOriginal(t *testing.T) {
	doc := mustDoc(t, `<r><a><b/></a><a><c><d/></c></a><a><b/><c/></a><a/><a><e>7</e></a></r>`)
	exprs := []string{
		"//a[b or c]",
		"//a[b or c/d]",
		"//a[(b or c) and e]",
		"//a[b or e = 7]",
		"//a[b[.//d] or c[d]]",
		"//r[a[b or c]]",
	}
	for _, e := range exprs {
		p := MustParse(e)
		want, err := Eval(p, doc)
		if err != nil {
			t.Fatal(err)
		}
		disjuncts, ok := p.DNF()
		if !ok {
			t.Fatalf("DNF(%s) overflowed", e)
		}
		union := map[int64]bool{}
		for _, d := range disjuncts {
			if d.HasOr() {
				t.Fatalf("DNF(%s) left an or in %s", e, d)
			}
			res, err := Eval(d, doc)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range res {
				union[n.ID] = true
			}
		}
		if len(union) != len(want) {
			t.Errorf("%s: union %d, original %d", e, len(union), len(want))
			continue
		}
		for _, n := range want {
			if !union[n.ID] {
				t.Errorf("%s: node %d missing from union", e, n.ID)
			}
		}
	}
}

func TestDNFOverflow(t *testing.T) {
	// 2^10 = 1024 > maxDisjuncts ⇒ overflow reported, no panic.
	expr := "/a"
	p := MustParse(expr)
	for i := 0; i < 10; i++ {
		q := MustParse("/x[b or c]").Steps[0].Preds[0]
		p.Steps[0].Preds = append(p.Steps[0].Preds, q)
	}
	if _, ok := p.DNF(); ok {
		t.Fatal("expected overflow")
	}
}
