package xpath

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mutate flips, inserts or deletes bytes of a seed string.
func mutate(r *rand.Rand, s string) string {
	b := []byte(s)
	n := 1 + r.Intn(4)
	for i := 0; i < n && len(b) > 0; i++ {
		switch r.Intn(3) {
		case 0:
			b[r.Intn(len(b))] = byte(r.Intn(128))
		case 1:
			pos := r.Intn(len(b) + 1)
			b = append(b[:pos], append([]byte{byte(r.Intn(128))}, b[pos:]...)...)
		case 2:
			pos := r.Intn(len(b))
			b = append(b[:pos], b[pos+1:]...)
		}
	}
	return string(b)
}

var fuzzSeeds = []string{
	"//patient[treatment]/name",
	`//regular[med = "celecoxib"]`,
	"//a[b > 1000 and .//c]",
	"/a/*/b[c[d = 'x']]",
	"  ",
	"////",
	"[[[]]]",
}

// TestQuickParseNeverPanics: Parse returns a value or an error on arbitrary
// input — it must never panic. Successful parses must survive a
// print-reparse round trip.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var in string
		if r.Intn(3) == 0 {
			raw := make([]byte, r.Intn(40))
			for i := range raw {
				raw[i] = byte(r.Intn(256))
			}
			in = string(raw)
		} else {
			in = mutate(r, fuzzSeeds[r.Intn(len(fuzzSeeds))])
		}
		p, err := Parse(in)
		if err != nil {
			return true
		}
		// A successful parse must round trip.
		p2, err := Parse(p.String())
		return err == nil && p2.String() == p.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
