package xpath

import (
	"testing"
)

// TestParsePrintRoundTrip checks that parsing and reprinting yields the
// canonical form for a broad set of expressions, including every rule of the
// paper's Table 1.
func TestParsePrintRoundTrip(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/a", "/a"},
		{"//a", "//a"},
		{"/a/b", "/a/b"},
		{"/a//b", "/a//b"},
		{"//a//b", "//a//b"},
		{"/*", "/*"},
		{"//*", "//*"},
		{"/a/*/b", "/a/*/b"},
		{"/a[b]", "/a[b]"},
		{"/a[b][c]", "/a[b][c]"},
		{"/a[b/c]", "/a[b/c]"},
		{"/a[.//b]", "/a[.//b]"},
		{"/a[b and c]", "/a[b and c]"},
		{"/a[b and c and d]", "/a[b and c and d]"},
		{`/a[b = "x"]`, `/a[b = "x"]`},
		{"/a[b = 5]", "/a[b = 5]"},
		{"/a[b > 1000]", "/a[b > 1000]"},
		{"/a[b >= 10]", "/a[b >= 10]"},
		{"/a[b < 1.5]", "/a[b < 1.5]"},
		{"/a[b <= 2]", "/a[b <= 2]"},
		{"/a[b != 0]", "/a[b != 0]"},
		{"/a[.]", "/a[.]"},
		// Paper Table 1 rules.
		{"//patient", "//patient"},
		{"//patient/name", "//patient/name"},
		{"//patient[treatment]", "//patient[treatment]"},
		{"//patient[treatment]/name", "//patient[treatment]/name"},
		{"//patient[.//experimental]", "//patient[.//experimental]"},
		{"//regular", "//regular"},
		{`//regular[med="celecoxib"]`, `//regular[med = "celecoxib"]`},
		{"//regular[bill > 1000]", "//regular[bill > 1000]"},
		// Whitespace and quote-style normalization.
		{"  /a [ b ] ", "/a[b]"},
		{`/a[b='x']`, `/a[b = "x"]`},
		// Relative paths.
		{"a/b", "a/b"},
		{".//b", ".//b"},
		{"a[b]", "a[b]"},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := p.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Canonical forms are fixed points.
		p2, err := Parse(p.String())
		if err != nil {
			t.Errorf("reparse(%q): %v", p.String(), err)
			continue
		}
		if p2.String() != p.String() {
			t.Errorf("canonical form %q not a fixed point (got %q)", p.String(), p2.String())
		}
	}
}

func TestParseAbsoluteFlag(t *testing.T) {
	for in, abs := range map[string]bool{
		"/a": true, "//a": true, "a": false, ".//a": false, "a/b": false,
	} {
		p, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if p.Absolute != abs {
			t.Errorf("Parse(%q).Absolute = %v, want %v", in, p.Absolute, abs)
		}
	}
}

func TestParseAxes(t *testing.T) {
	p := MustParse("//a/b//c")
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if p.Steps[0].Axis != Descendant || p.Steps[1].Axis != Child || p.Steps[2].Axis != Descendant {
		t.Fatalf("axes = %v %v %v", p.Steps[0].Axis, p.Steps[1].Axis, p.Steps[2].Axis)
	}
	rel := MustParse(".//b")
	if rel.Steps[0].Axis != Descendant {
		t.Fatalf(".//b first axis = %v", rel.Steps[0].Axis)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"/",
		"//",
		"/a/",
		"/a[",
		"/a[]",
		"/a]b",
		"/a[b",
		"/a[b =]",
		"/a[= 5]",
		"/a[/b]", // absolute path in qualifier
		"/a[b!]",
		`/a[b = "unterminated]`,
		"/a[b and]",
		"/a b",
		"/a[.b]", // '.' must stand alone
		"/a[b ~ 5]",
		"/a$",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): expected error", c)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	p := MustParse(`/a[b = "hi there"]`)
	q := p.Steps[0].Preds[0]
	if q.Kind != Cmp || q.Value.IsNum || q.Value.Str != "hi there" {
		t.Fatalf("string literal = %+v", q.Value)
	}
	p = MustParse("/a[b = 3.25]")
	q = p.Steps[0].Preds[0]
	if !q.Value.IsNum || q.Value.Num != 3.25 {
		t.Fatalf("number literal = %+v", q.Value)
	}
	// Single quotes accepted, normalized to double in printing.
	p = MustParse(`/a[b = 'x']`)
	if p.String() != `/a[b = "x"]` {
		t.Fatalf("got %q", p.String())
	}
}

func TestParseNestedQualifiers(t *testing.T) {
	p := MustParse(`/a[b[c = 1]/d]`)
	if p.String() != `/a[b[c = 1]/d]` {
		t.Fatalf("got %q", p.String())
	}
	inner := p.Steps[0].Preds[0]
	if inner.Kind != Exists || len(inner.Path.Steps) != 2 {
		t.Fatalf("inner = %+v", inner)
	}
	if inner.Path.Steps[0].Preds[0].Kind != Cmp {
		t.Fatalf("nested cmp missing")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := MustParse(`//a[b = 1]/c[.//d]`)
	c := p.Clone()
	if c.String() != p.String() {
		t.Fatalf("clone differs: %q vs %q", c.String(), p.String())
	}
	c.Steps[0].Test = "zzz"
	c.Steps[1].Preds[0].Path.Steps[0].Test = "yyy"
	if p.String() != `//a[b = 1]/c[.//d]` {
		t.Fatalf("mutation leaked: %q", p.String())
	}
}

func TestHelpers(t *testing.T) {
	p := MustParse(`//a[b]/c`)
	if !p.HasPredicates() {
		t.Error("HasPredicates false")
	}
	if !p.HasDescendant() {
		t.Error("HasDescendant false")
	}
	if p.LastLabel() != "c" {
		t.Errorf("LastLabel = %q", p.LastLabel())
	}
	s := p.StripPredicates()
	if s.String() != "//a/c" {
		t.Errorf("StripPredicates = %q", s.String())
	}
	// StripPredicates must not mutate the original.
	if p.String() != "//a[b]/c" {
		t.Errorf("original mutated: %q", p.String())
	}
	q := MustParse("/a/b")
	if q.HasPredicates() || q.HasDescendant() {
		t.Error("false positives on /a/b")
	}
	r := MustParse("/a[.//b]")
	if !r.HasDescendant() {
		t.Error("descendant inside qualifier not detected")
	}
}

func TestOpString(t *testing.T) {
	ops := map[CmpOp]string{Eq: "=", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}
	for op, s := range ops {
		if op.String() != s {
			t.Errorf("%v.String() = %q", op, op.String())
		}
	}
}
