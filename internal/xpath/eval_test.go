package xpath

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"xmlac/internal/xmltree"
)

func mustDoc(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// labelsOf projects a node set to its labels for compact assertions.
func labelsOf(nodes []*xmltree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Label
	}
	return out
}

func evalLabels(t *testing.T, doc *xmltree.Document, expr string) []string {
	t.Helper()
	res, err := Eval(MustParse(expr), doc)
	if err != nil {
		t.Fatalf("Eval(%q): %v", expr, err)
	}
	return labelsOf(res)
}

const hospitalDoc = `<hospital><dept><patients>` +
	`<patient><psn>033</psn><name>john doe</name><treatment><regular><med>enoxaparin</med><bill>700</bill></regular></treatment></patient>` +
	`<patient><psn>042</psn><name>jane doe</name><treatment><experimental><test>regression hypnosis</test><bill>1600</bill></experimental></treatment></patient>` +
	`<patient><psn>099</psn><name>joy smith</name></patient>` +
	`</patients><staffinfo/></dept></hospital>`

func TestEvalChildAndDescendant(t *testing.T) {
	doc := mustDoc(t, `<a><b><c/></b><c/></a>`)
	if got := evalLabels(t, doc, "/a"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("/a = %v", got)
	}
	if got := evalLabels(t, doc, "/a/c"); len(got) != 1 {
		t.Fatalf("/a/c = %v", got)
	}
	if got := evalLabels(t, doc, "//c"); len(got) != 2 {
		t.Fatalf("//c = %v", got)
	}
	if got := evalLabels(t, doc, "/a//c"); len(got) != 2 {
		t.Fatalf("/a//c = %v", got)
	}
	// //a matches the root element itself.
	if got := evalLabels(t, doc, "//a"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("//a = %v", got)
	}
	// /b does not match a non-root element.
	if got := evalLabels(t, doc, "/b"); len(got) != 0 {
		t.Fatalf("/b = %v", got)
	}
}

func TestEvalWildcard(t *testing.T) {
	doc := mustDoc(t, `<a><b/><c><d/></c></a>`)
	if got := evalLabels(t, doc, "/a/*"); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("/a/* = %v", got)
	}
	if got := evalLabels(t, doc, "//*"); len(got) != 4 {
		t.Fatalf("//* = %v", got)
	}
	if got := evalLabels(t, doc, "/*/*/d"); !reflect.DeepEqual(got, []string{"d"}) {
		t.Fatalf("/*/*/d = %v", got)
	}
}

func TestEvalExistencePredicates(t *testing.T) {
	doc := mustDoc(t, hospitalDoc)
	// Patients with a treatment: the first two.
	res, err := Eval(MustParse("//patient[treatment]"), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("//patient[treatment] matched %d", len(res))
	}
	// Patients with an experimental treatment anywhere below: the second.
	res, err = Eval(MustParse("//patient[.//experimental]"), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("//patient[.//experimental] matched %d", len(res))
	}
	// Multi-step qualifier path.
	res, err = Eval(MustParse("//patient[treatment/regular]"), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("//patient[treatment/regular] matched %d", len(res))
	}
}

func TestEvalValueComparisons(t *testing.T) {
	doc := mustDoc(t, hospitalDoc)
	cases := []struct {
		expr string
		n    int
	}{
		{`//regular[med = "celecoxib"]`, 0},
		{`//regular[med = "enoxaparin"]`, 1},
		{`//regular[bill > 1000]`, 0},
		{`//regular[bill > 500]`, 1},
		{`//experimental[bill > 1000]`, 1},
		{`//patient[psn = "033"]`, 1},
		{`//patient[psn = 33]`, 1}, // numeric coercion: "033" == 33
		{`//regular[bill >= 700]`, 1},
		{`//regular[bill <= 700]`, 1},
		{`//regular[bill < 700]`, 0},
		{`//regular[bill != 700]`, 0},
		{`//regular[med != "celecoxib"]`, 1},
		{`//patient[name > 5]`, 0}, // non-numeric value with numeric op
	}
	for _, c := range cases {
		res, err := Eval(MustParse(c.expr), doc)
		if err != nil {
			t.Errorf("Eval(%q): %v", c.expr, err)
			continue
		}
		if len(res) != c.n {
			t.Errorf("Eval(%q) matched %d, want %d", c.expr, len(res), c.n)
		}
	}
}

func TestEvalAndQualifier(t *testing.T) {
	doc := mustDoc(t, hospitalDoc)
	res, err := Eval(MustParse(`//patient[treatment and name = "john doe"]`), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("matched %d", len(res))
	}
	res, err = Eval(MustParse(`//patient[treatment and name = "joy smith"]`), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("matched %d, want 0", len(res))
	}
}

func TestEvalSelfQualifier(t *testing.T) {
	doc := mustDoc(t, `<a><b/></a>`)
	res, err := Eval(MustParse("/a[.]"), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("/a[.] matched %d", len(res))
	}
}

func TestEvalDocumentOrderAndDedup(t *testing.T) {
	doc := mustDoc(t, `<a><b><c/></b><b><c/></b></a>`)
	res, err := Eval(MustParse("//b/c"), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("matched %d", len(res))
	}
	if res[0].ID >= res[1].ID {
		t.Fatalf("not in document order: %v then %v", res[0].ID, res[1].ID)
	}
	// Overlapping descendant steps must not produce duplicates.
	res, err = Eval(MustParse("//a//c"), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("//a//c matched %d (duplicates?)", len(res))
	}
}

func TestEvalFromRelative(t *testing.T) {
	doc := mustDoc(t, hospitalDoc)
	patients, _ := Eval(MustParse("//patient"), doc)
	res, err := EvalFrom(MustParse("name"), patients[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].TextContent() != "john doe" {
		t.Fatalf("relative name = %v", labelsOf(res))
	}
	res, err = EvalFrom(MustParse(".//bill"), patients[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].TextContent() != "1600" {
		t.Fatalf(".//bill = %v", res)
	}
	// Bare "." returns the context node.
	res, err = EvalFrom(MustParse("."), patients[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != patients[2] {
		t.Fatalf(". = %v", res)
	}
}

func TestEvalRejectsWrongPathKinds(t *testing.T) {
	doc := mustDoc(t, `<a/>`)
	if _, err := Eval(MustParse("a"), doc); err == nil {
		t.Error("Eval accepted relative path")
	}
	if _, err := EvalFrom(MustParse("/a"), doc.Root()); err == nil {
		t.Error("EvalFrom accepted absolute path")
	}
}

func TestMatches(t *testing.T) {
	doc := mustDoc(t, hospitalDoc)
	patients, _ := Eval(MustParse("//patient"), doc)
	ok, err := Matches(MustParse("//patient[treatment]"), doc, patients[0])
	if err != nil || !ok {
		t.Fatalf("Matches = %v, %v", ok, err)
	}
	ok, err = Matches(MustParse("//patient[treatment]"), doc, patients[2])
	if err != nil || ok {
		t.Fatalf("Matches = %v, %v (joy smith has no treatment)", ok, err)
	}
}

// randomTree builds a random labeled tree for property tests.
func randomTree(r *rand.Rand) *xmltree.Document {
	labels := []string{"a", "b", "c"}
	d := xmltree.NewDocument(labels[r.Intn(len(labels))])
	nodes := []*xmltree.Node{d.Root()}
	n := r.Intn(30)
	for i := 0; i < n; i++ {
		p := nodes[r.Intn(len(nodes))]
		c := d.AddElement(p, labels[r.Intn(len(labels))])
		nodes = append(nodes, c)
	}
	return d
}

// randomPath builds a random absolute path over labels {a,b,c,*}.
func randomPath(r *rand.Rand) *Path {
	labels := []string{"a", "b", "c", "*"}
	p := &Path{Absolute: true}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		axis := Child
		if r.Intn(2) == 0 {
			axis = Descendant
		}
		s := &Step{Axis: axis, Test: labels[r.Intn(len(labels))]}
		if r.Intn(4) == 0 {
			s.Preds = []*Pred{{Kind: Exists, Path: &Path{Steps: []*Step{{
				Axis: Child, Test: labels[r.Intn(3)],
			}}}}}
		}
		p.Steps = append(p.Steps, s)
	}
	return p
}

// TestQuickDescendantSubsumesChild: [[p with child axis]] ⊆ [[p with the
// same step made descendant]] — a structural soundness property of the
// evaluator.
func TestQuickDescendantSubsumesChild(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomTree(r)
		p := randomPath(r)
		// Pick a random step and loosen it to descendant.
		loose := p.Clone()
		loose.Steps[r.Intn(len(loose.Steps))].Axis = Descendant
		resP, err1 := Eval(p, doc)
		resL, err2 := Eval(loose, doc)
		if err1 != nil || err2 != nil {
			return false
		}
		in := map[*xmltree.Node]bool{}
		for _, n := range resL {
			in[n] = true
		}
		for _, n := range resP {
			if !in[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDropPredicateGrowsResult: removing a qualifier can only grow the
// result set.
func TestQuickDropPredicateGrowsResult(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomTree(r)
		p := randomPath(r)
		resP, err := Eval(p, doc)
		if err != nil {
			return false
		}
		resS, err := Eval(p.StripPredicates(), doc)
		if err != nil {
			return false
		}
		in := map[*xmltree.Node]bool{}
		for _, n := range resS {
			in[n] = true
		}
		for _, n := range resP {
			if !in[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWildcardSubsumesLabel: replacing a node test with * can only grow
// the result set.
func TestQuickWildcardSubsumesLabel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomTree(r)
		p := randomPath(r)
		w := p.Clone()
		w.Steps[r.Intn(len(w.Steps))].Test = Wildcard
		resP, err1 := Eval(p, doc)
		resW, err2 := Eval(w, doc)
		if err1 != nil || err2 != nil {
			return false
		}
		in := map[*xmltree.Node]bool{}
		for _, n := range resW {
			in[n] = true
		}
		for _, n := range resP {
			if !in[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
