package xpath

import (
	"fmt"
	"sort"
	"strconv"

	"xmlac/internal/xmltree"
)

// Eval evaluates an absolute path on a document and returns [[p]](T): the
// matched element nodes, deduplicated, in document order. Following standard
// XPath semantics the evaluation context of an absolute path is the virtual
// document node above the root element, so //a matches the root element
// itself when it is labeled a.
func Eval(p *Path, doc *xmltree.Document) ([]*xmltree.Node, error) {
	return EvalWithStats(p, doc, nil)
}

// EvalStats counts the work one evaluation performed: Visited is how many
// candidate nodes were examined against a step's node test along the main
// path (qualifier sub-evaluations are not counted). A nil *EvalStats is
// accepted everywhere and counts nothing.
type EvalStats struct {
	Visited int
}

func (st *EvalStats) visit() {
	if st != nil {
		st.Visited++
	}
}

// EvalWithStats is Eval with an optional work counter.
func EvalWithStats(p *Path, doc *xmltree.Document, st *EvalStats) ([]*xmltree.Node, error) {
	if !p.Absolute {
		return nil, fmt.Errorf("xpath: Eval requires an absolute path, got %q", p.String())
	}
	if len(p.Steps) == 0 {
		return nil, fmt.Errorf("xpath: cannot evaluate the empty absolute path")
	}
	cur := map[*xmltree.Node]bool{}
	first := p.Steps[0]
	// The virtual document node's only child is the root element; its
	// descendants are the root element and everything below it.
	switch first.Axis {
	case Child:
		st.visit()
		if matchTest(doc.Root(), first.Test) && holdPreds(doc.Root(), first.Preds) {
			cur[doc.Root()] = true
		}
	case Descendant:
		collectSelfOrDescendants(doc.Root(), first.Test, first.Preds, cur, st)
	default:
		return nil, fmt.Errorf("xpath: unexpected axis in absolute path")
	}
	out, err := evalSteps(p.Steps[1:], cur, st)
	if err != nil {
		return nil, err
	}
	return docOrder(out), nil
}

// EvalFrom evaluates a relative path from a context node, returning the
// matched nodes in document order. The bare "." path returns the context
// node itself.
func EvalFrom(p *Path, ctx *xmltree.Node) ([]*xmltree.Node, error) {
	if p.Absolute {
		return nil, fmt.Errorf("xpath: EvalFrom requires a relative path, got %q", p.String())
	}
	if len(p.Steps) == 0 {
		return []*xmltree.Node{ctx}, nil
	}
	cur := map[*xmltree.Node]bool{ctx: true}
	out, err := evalSteps(p.Steps, cur, nil)
	if err != nil {
		return nil, err
	}
	return docOrder(out), nil
}

// Matches reports whether node n is in the result of evaluating absolute
// path p on doc.
func Matches(p *Path, doc *xmltree.Document, n *xmltree.Node) (bool, error) {
	res, err := Eval(p, doc)
	if err != nil {
		return false, err
	}
	for _, m := range res {
		if m == n {
			return true, nil
		}
	}
	return false, nil
}

func evalSteps(steps []*Step, cur map[*xmltree.Node]bool, st *EvalStats) (map[*xmltree.Node]bool, error) {
	for _, s := range steps {
		next := map[*xmltree.Node]bool{}
		for n := range cur {
			switch s.Axis {
			case Child:
				for _, c := range n.ChildElements() {
					st.visit()
					if matchTest(c, s.Test) && holdPreds(c, s.Preds) {
						next[c] = true
					}
				}
			case Descendant:
				for _, c := range n.ChildElements() {
					collectSelfOrDescendants(c, s.Test, s.Preds, next, st)
				}
			case Self:
				st.visit()
				if holdPreds(n, s.Preds) {
					next[n] = true
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return cur, nil
}

// collectSelfOrDescendants adds n and every element descendant of n matching
// the test and predicates into out.
func collectSelfOrDescendants(n *xmltree.Node, test string, preds []*Pred, out map[*xmltree.Node]bool, st *EvalStats) {
	if n.Kind != xmltree.Element {
		return
	}
	st.visit()
	if matchTest(n, test) && holdPreds(n, preds) {
		out[n] = true
	}
	for _, c := range n.Children() {
		collectSelfOrDescendants(c, test, preds, out, st)
	}
}

func matchTest(n *xmltree.Node, test string) bool {
	if n.Kind != xmltree.Element {
		return false
	}
	return test == Wildcard || n.Label == test
}

func holdPreds(n *xmltree.Node, preds []*Pred) bool {
	for _, q := range preds {
		if !holdPred(n, q) {
			return false
		}
	}
	return true
}

func holdPred(n *xmltree.Node, q *Pred) bool {
	switch q.Kind {
	case And:
		return holdPred(n, q.Left) && holdPred(n, q.Right)
	case Or:
		return holdPred(n, q.Left) || holdPred(n, q.Right)
	case Exists:
		res, err := EvalFrom(q.Path, n)
		return err == nil && len(res) > 0
	case Cmp:
		res, err := EvalFrom(q.Path, n)
		if err != nil {
			return false
		}
		for _, m := range res {
			if compareValue(m.TextContent(), q.Op, q.Value) {
				return true
			}
		}
		return false
	}
	return false
}

// compareValue applies an XPath 1.0-style comparison between a node's string
// value and a literal. When the literal is numeric, the node value is parsed
// as a number (comparison is false if it does not parse). When the literal
// is a string, = and != compare strings; the relational operators coerce
// both sides to numbers, as XPath 1.0 does.
func compareValue(nodeVal string, op CmpOp, lit Literal) bool {
	if lit.IsNum {
		f, err := strconv.ParseFloat(nodeVal, 64)
		if err != nil {
			return false
		}
		return cmpFloat(f, op, lit.Num)
	}
	switch op {
	case Eq:
		return nodeVal == lit.Str
	case Ne:
		return nodeVal != lit.Str
	default:
		a, errA := strconv.ParseFloat(nodeVal, 64)
		b, errB := strconv.ParseFloat(lit.Str, 64)
		if errA != nil || errB != nil {
			return false
		}
		return cmpFloat(a, op, b)
	}
}

func cmpFloat(a float64, op CmpOp, b float64) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	}
	return false
}

func docOrder(set map[*xmltree.Node]bool) []*xmltree.Node {
	out := make([]*xmltree.Node, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
