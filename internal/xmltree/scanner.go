package xmltree

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the fast XML scanner used by Parse. The stdlib
// encoding/xml decoder (see parse_std.go) processes well-formed documents
// at roughly 10 MB/s, which is an order of magnitude slower than a
// purpose-built scanner and would distort the loading-time experiment
// (Figure 9) where native-store loading must reflect parsing cost, not
// decoder overhead. ParseStd remains available and the test suite checks
// both parsers produce identical trees.
//
// Supported syntax: elements with attributes (single- or double-quoted),
// character data with the five predefined entities and numeric character
// references, CDATA sections, comments, processing instructions, an
// optional XML declaration and an optional DOCTYPE (without internal-subset
// markup declarations containing '>'). Namespace prefixes are kept as part
// of the name, matching encoding/xml's Local-name behavior only for
// unprefixed documents — the generators here emit none.

type scanner struct {
	src []byte
	pos int
	// names interns element and attribute names: a document uses few
	// distinct names but mentions them constantly, so interning removes the
	// per-mention string allocation.
	names map[string]string
}

func (s *scanner) intern(b []byte) string {
	if s.names == nil {
		s.names = make(map[string]string, 64)
	}
	if n, ok := s.names[string(b)]; ok { // compiler avoids the alloc here
		return n
	}
	n := string(b)
	s.names[n] = n
	return n
}

func (s *scanner) errf(format string, args ...any) error {
	line := 1
	for i := 0; i < s.pos && i < len(s.src); i++ {
		if s.src[i] == '\n' {
			line++
		}
	}
	return fmt.Errorf("xmltree: parse: line %d: %s", line, fmt.Sprintf(format, args...))
}

// parseFast is the scanner entry point.
func parseFast(data []byte) (*Document, error) {
	s := &scanner{src: data}
	var doc *Document
	var cur *Node
	var text strings.Builder
	flushText := func() {
		if text.Len() == 0 {
			return
		}
		t := strings.TrimSpace(text.String())
		text.Reset()
		if t == "" || cur == nil {
			return
		}
		doc.AddText(cur, t)
	}
	for {
		s.skipProlog(doc == nil && cur == nil)
		if s.pos >= len(s.src) {
			break
		}
		c := s.src[s.pos]
		if c != '<' {
			// Character data.
			start := s.pos
			for s.pos < len(s.src) && s.src[s.pos] != '<' {
				s.pos++
			}
			if cur != nil {
				decoded, err := decodeEntities(s.src[start:s.pos])
				if err != nil {
					return nil, s.errf("%v", err)
				}
				text.WriteString(decoded)
			} else if strings.TrimSpace(string(s.src[start:s.pos])) != "" {
				return nil, s.errf("character data outside the root element")
			}
			continue
		}
		// '<' dispatch.
		if s.pos+1 >= len(s.src) {
			return nil, s.errf("unexpected end of input after '<'")
		}
		switch s.src[s.pos+1] {
		case '!':
			if s.hasPrefix("<!--") {
				if err := s.skipUntil("-->"); err != nil {
					return nil, err
				}
				continue
			}
			if s.hasPrefix("<![CDATA[") {
				start := s.pos + len("<![CDATA[")
				end := indexFrom(s.src, start, "]]>")
				if end < 0 {
					return nil, s.errf("unterminated CDATA section")
				}
				if cur == nil {
					return nil, s.errf("CDATA outside the root element")
				}
				text.Write(s.src[start:end])
				s.pos = end + 3
				continue
			}
			if s.hasPrefix("<!DOCTYPE") {
				if err := s.skipDoctype(); err != nil {
					return nil, err
				}
				continue
			}
			return nil, s.errf("unsupported markup declaration")
		case '?':
			if err := s.skipUntil("?>"); err != nil {
				return nil, err
			}
			continue
		case '/':
			// End tag.
			flushText()
			s.pos += 2
			name, err := s.name()
			if err != nil {
				return nil, err
			}
			s.skipWS()
			if s.pos >= len(s.src) || s.src[s.pos] != '>' {
				return nil, s.errf("malformed end tag </%s", name)
			}
			s.pos++
			if cur == nil {
				return nil, s.errf("unbalanced end tag </%s>", name)
			}
			if cur.Label != name {
				return nil, s.errf("end tag </%s> does not match <%s>", name, cur.Label)
			}
			cur = cur.parent
		default:
			// Start tag.
			flushText()
			s.pos++
			name, err := s.name()
			if err != nil {
				return nil, err
			}
			var n *Node
			if doc == nil {
				doc = NewDocument(name)
				n = doc.root
			} else {
				if cur == nil {
					return nil, s.errf("multiple root elements (<%s>)", name)
				}
				n = doc.AddElement(cur, name)
			}
			selfClose, err := s.attributes(n)
			if err != nil {
				return nil, err
			}
			if !selfClose {
				cur = n
			}
		}
	}
	if doc == nil {
		return nil, fmt.Errorf("xmltree: parse: empty document")
	}
	if cur != nil {
		return nil, fmt.Errorf("xmltree: parse: unexpected end of input inside element %s", cur.Label)
	}
	return doc, nil
}

// skipProlog consumes leading whitespace outside elements (only meaningful
// before the root); inside content, whitespace is handled as text.
func (s *scanner) skipProlog(outside bool) {
	if !outside {
		return
	}
	for s.pos < len(s.src) {
		switch s.src[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

func (s *scanner) hasPrefix(p string) bool {
	return s.pos+len(p) <= len(s.src) && string(s.src[s.pos:s.pos+len(p)]) == p
}

func (s *scanner) skipUntil(end string) error {
	i := indexFrom(s.src, s.pos, end)
	if i < 0 {
		return s.errf("unterminated %q construct", end)
	}
	s.pos = i + len(end)
	return nil
}

func indexFrom(src []byte, from int, sub string) int {
	i := strings.Index(string(src[from:]), sub)
	if i < 0 {
		return -1
	}
	return from + i
}

// skipDoctype consumes a DOCTYPE declaration, honoring an internal subset
// in square brackets.
func (s *scanner) skipDoctype() error {
	depth := 0
	for s.pos < len(s.src) {
		switch s.src[s.pos] {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth == 0 {
				s.pos++
				return nil
			}
		}
		s.pos++
	}
	return s.errf("unterminated DOCTYPE")
}

func (s *scanner) skipWS() {
	for s.pos < len(s.src) {
		switch s.src[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

func (s *scanner) name() (string, error) {
	start := s.pos
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '>' || c == '/' || c == '=' {
			break
		}
		if c == '<' {
			return "", s.errf("'<' inside a name")
		}
		s.pos++
	}
	if s.pos == start {
		return "", s.errf("expected a name")
	}
	return s.intern(s.src[start:s.pos]), nil
}

// attributes parses the attribute list and tag close of a start tag; it
// reports whether the tag was self-closing.
func (s *scanner) attributes(n *Node) (bool, error) {
	for {
		s.skipWS()
		if s.pos >= len(s.src) {
			return false, s.errf("unterminated start tag <%s", n.Label)
		}
		switch s.src[s.pos] {
		case '>':
			s.pos++
			return false, nil
		case '/':
			if s.pos+1 < len(s.src) && s.src[s.pos+1] == '>' {
				s.pos += 2
				return true, nil
			}
			return false, s.errf("stray '/' in start tag <%s", n.Label)
		}
		key, err := s.name()
		if err != nil {
			return false, err
		}
		s.skipWS()
		if s.pos >= len(s.src) || s.src[s.pos] != '=' {
			return false, s.errf("attribute %s missing '='", key)
		}
		s.pos++
		s.skipWS()
		if s.pos >= len(s.src) || (s.src[s.pos] != '"' && s.src[s.pos] != '\'') {
			return false, s.errf("attribute %s missing quoted value", key)
		}
		q := s.src[s.pos]
		s.pos++
		start := s.pos
		for s.pos < len(s.src) && s.src[s.pos] != q {
			s.pos++
		}
		if s.pos >= len(s.src) {
			return false, s.errf("unterminated attribute value for %s", key)
		}
		val, err := decodeEntities(s.src[start:s.pos])
		if err != nil {
			return false, s.errf("%v", err)
		}
		s.pos++
		if key == SignAttr {
			sign, err := ParseSign(val)
			if err != nil {
				return false, err
			}
			n.Sign = sign
			continue
		}
		if n.Attrs == nil {
			n.Attrs = make(map[string]string)
		}
		if _, dup := n.Attrs[key]; dup {
			return false, s.errf("duplicate attribute %s on <%s>", key, n.Label)
		}
		n.Attrs[key] = val
	}
}

// decodeEntities expands the predefined entities and numeric character
// references; the fast path (no '&') avoids allocation.
func decodeEntities(b []byte) (string, error) {
	amp := -1
	for i, c := range b {
		if c == '&' {
			amp = i
			break
		}
	}
	if amp < 0 {
		return string(b), nil
	}
	var out strings.Builder
	out.Grow(len(b))
	out.Write(b[:amp])
	i := amp
	for i < len(b) {
		c := b[i]
		if c != '&' {
			out.WriteByte(c)
			i++
			continue
		}
		semi := -1
		for j := i + 1; j < len(b) && j < i+12; j++ {
			if b[j] == ';' {
				semi = j
				break
			}
		}
		if semi < 0 {
			return "", fmt.Errorf("unterminated entity reference")
		}
		ent := string(b[i+1 : semi])
		switch ent {
		case "amp":
			out.WriteByte('&')
		case "lt":
			out.WriteByte('<')
		case "gt":
			out.WriteByte('>')
		case "quot":
			out.WriteByte('"')
		case "apos":
			out.WriteByte('\'')
		default:
			if len(ent) > 1 && ent[0] == '#' {
				numeric := ent[1:]
				base := 10
				if numeric[0] == 'x' || numeric[0] == 'X' {
					numeric = numeric[1:]
					base = 16
				}
				r, err := strconv.ParseUint(numeric, base, 32)
				if err != nil {
					return "", fmt.Errorf("invalid character reference &%s;", ent)
				}
				out.WriteRune(rune(r))
			} else {
				return "", fmt.Errorf("unknown entity &%s;", ent)
			}
		}
		i = semi + 1
	}
	return out.String(), nil
}

// Parse reads an XML document using the fast scanner. Element and
// character-data content is kept; comments, processing instructions, the
// XML declaration and DOCTYPE are skipped. Whitespace-only text between
// elements is dropped (the model is a data tree, not a
// formatting-preserving DOM). A sign attribute, if present, is decoded into
// the node's Sign field.
func Parse(r io.Reader) (*Document, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmltree: parse: %w", err)
	}
	return parseFast(data)
}

// ParseString is Parse over an in-memory string.
func ParseString(s string) (*Document, error) {
	return parseFast([]byte(s))
}
