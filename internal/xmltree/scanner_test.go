package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFastParserEntities(t *testing.T) {
	doc, err := ParseString(`<a k="x &amp; y">1 &lt; 2 &gt; 0 &quot;q&quot; &apos;a&apos; &#65;&#x42;</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root().TextContent(); got != `1 < 2 > 0 "q" 'a' AB` {
		t.Fatalf("text = %q", got)
	}
	if got := doc.Root().Attrs["k"]; got != "x & y" {
		t.Fatalf("attr = %q", got)
	}
}

func TestFastParserCDATA(t *testing.T) {
	doc, err := ParseString(`<a><![CDATA[x < y & "z"]]></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root().TextContent(); got != `x < y & "z"` {
		t.Fatalf("text = %q", got)
	}
}

func TestFastParserCommentsPIDoctype(t *testing.T) {
	doc, err := ParseString(`<?xml version="1.0"?>
<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]>
<!-- hello -->
<a>v<!-- inner --><?pi data?></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root().TextContent(); got != "v" {
		t.Fatalf("text = %q", got)
	}
}

func TestFastParserErrors(t *testing.T) {
	cases := []string{
		``,
		`<a`,
		`<a>`,
		`</a>`,
		`<a></b>`,
		`<a/><b/>`,
		`<a x=1/>`,
		`<a x="1/>`,
		`<a x="1" x="2"/>`,
		`<a>&bogus;</a>`,
		`<a>&amp</a>`,
		`<a>&#zz;</a>`,
		`<a><![CDATA[x]]</a>`,
		`<!-- unterminated`,
		`text outside<a/>`,
		`<a sign="?"/>`,
		`<a><b/></a>trailing`,
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): expected error", c)
		}
	}
}

func TestFastParserSingleQuotedAttrs(t *testing.T) {
	doc, err := ParseString(`<a k='v"w'/>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root().Attrs["k"] != `v"w` {
		t.Fatalf("attr = %q", doc.Root().Attrs["k"])
	}
}

// equalTrees compares two documents structurally (labels, values, signs,
// attrs), ignoring node ids.
func equalTrees(a, b *Node) bool {
	if a.Kind != b.Kind || a.Label != b.Label || a.Value != b.Value || a.Sign != b.Sign {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for k, v := range a.Attrs {
		if b.Attrs[k] != v {
			return false
		}
	}
	if len(a.children) != len(b.children) {
		return false
	}
	for i := range a.children {
		if !equalTrees(a.children[i], b.children[i]) {
			return false
		}
	}
	return true
}

// TestParsersAgreeOnFixtures: the fast scanner and the stdlib decoder build
// identical trees.
func TestParsersAgreeOnFixtures(t *testing.T) {
	fixtures := []string{
		`<a/>`,
		`<a><b>x</b><c k="v"/></a>`,
		`<a sign="+"><b sign="-">t</b></a>`,
		`<a>x &amp; y</a>`,
		`<a k="1" l="2">m<b/>n</a>`,
		"<a>\n  <b>x</b>\n</a>",
	}
	for _, f := range fixtures {
		fast, err1 := ParseString(f)
		std, err2 := ParseStd(strings.NewReader(f))
		if err1 != nil || err2 != nil {
			t.Fatalf("%q: fast=%v std=%v", f, err1, err2)
		}
		if !equalTrees(fast.Root(), std.Root()) {
			t.Fatalf("parsers disagree on %q:\nfast: %s\nstd:  %s", f, fast, std)
		}
	}
}

// TestQuickParsersAgree: on serialized random documents both parsers agree.
func TestQuickParsersAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r)
		out := d.String()
		fast, err1 := ParseString(out)
		std, err2 := ParseStd(strings.NewReader(out))
		if err1 != nil || err2 != nil {
			t.Logf("%q: fast=%v std=%v", out, err1, err2)
			return false
		}
		return equalTrees(fast.Root(), std.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseFast(b *testing.B) {
	s := benchDoc()
	b.SetBytes(int64(len(s)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseStd(b *testing.B) {
	s := benchDoc()
	b.SetBytes(int64(len(s)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseStd(strings.NewReader(s)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDoc() string {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 2000; i++ {
		sb.WriteString(`<item id="x"><name>hello world foo bar</name><value>12345</value></item>`)
	}
	sb.WriteString("</root>")
	return sb.String()
}
