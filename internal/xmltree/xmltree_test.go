package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDocumentRootID(t *testing.T) {
	d := NewDocument("site")
	if d.Root().ID != 1 {
		t.Fatalf("root id = %d, want 1", d.Root().ID)
	}
	if d.Root().Label != "site" {
		t.Fatalf("root label = %q", d.Root().Label)
	}
	if d.Size() != 1 {
		t.Fatalf("size = %d, want 1", d.Size())
	}
}

func TestAddElementAssignsDocumentOrderIDs(t *testing.T) {
	d := NewDocument("a")
	b := d.AddElement(d.Root(), "b")
	c := d.AddElement(d.Root(), "c")
	e := d.AddElement(b, "e")
	if b.ID != 2 || c.ID != 3 || e.ID != 4 {
		t.Fatalf("ids = %d,%d,%d want 2,3,4", b.ID, c.ID, e.ID)
	}
	if d.NodeByID(4) != e {
		t.Fatalf("NodeByID(4) mismatch")
	}
}

func TestParseSimple(t *testing.T) {
	doc, err := ParseString(`<a><b>hello</b><c x="1"/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	if root.Label != "a" {
		t.Fatalf("root = %q", root.Label)
	}
	kids := root.ChildElements()
	if len(kids) != 2 {
		t.Fatalf("children = %d, want 2", len(kids))
	}
	if kids[0].Label != "b" || kids[1].Label != "c" {
		t.Fatalf("child labels %q %q", kids[0].Label, kids[1].Label)
	}
	if got := kids[0].TextContent(); got != "hello" {
		t.Fatalf("text content = %q", got)
	}
	if kids[1].Attrs["x"] != "1" {
		t.Fatalf("attr x = %q", kids[1].Attrs["x"])
	}
}

func TestParseSignAttribute(t *testing.T) {
	doc, err := ParseString(`<a sign="+"><b sign="-"/><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root().Sign != SignPlus {
		t.Fatalf("root sign = %v", doc.Root().Sign)
	}
	kids := doc.Root().ChildElements()
	if kids[0].Sign != SignMinus || kids[1].Sign != SignNone {
		t.Fatalf("child signs = %v %v", kids[0].Sign, kids[1].Sign)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`<a>`,
		`<a></b>`,
		`<a sign="?"/>`,
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): expected error", c)
		}
	}
}

func TestParseDropsInsignificantWhitespace(t *testing.T) {
	doc, err := ParseString("<a>\n  <b>x</b>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	// Only a, b, and the text node "x" should exist.
	if doc.Size() != 3 {
		t.Fatalf("size = %d, want 3", doc.Size())
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	in := `<a><b k="v">hi</b><c/><d>1</d></a>`
	doc, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	out := doc.String()
	if out != in {
		t.Fatalf("round trip: got %q want %q", out, in)
	}
}

func TestSerializeSigns(t *testing.T) {
	doc, err := ParseString(`<a><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	doc.Root().Sign = SignMinus
	doc.Root().ChildElements()[0].Sign = SignPlus
	got := doc.StringAnnotated()
	if !strings.Contains(got, `<a sign="-">`) || !strings.Contains(got, `<b sign="+"/>`) {
		t.Fatalf("annotated output missing signs:\n%s", got)
	}
	// Compact form must omit signs.
	if strings.Contains(doc.String(), "sign") {
		t.Fatalf("compact form leaked signs: %s", doc.String())
	}
}

func TestEscaping(t *testing.T) {
	d := NewDocument("a")
	d.AddText(d.Root(), `x < y & "z"`)
	b := d.AddElement(d.Root(), "b")
	if err := d.SetAttr(b, "k", `a"b<c`); err != nil {
		t.Fatal(err)
	}
	out := d.String()
	re, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse of %q: %v", out, err)
	}
	if got := re.Root().Children()[0].Value; got != `x < y & "z"` {
		t.Fatalf("text = %q", got)
	}
	if got := re.Root().ChildElements()[0].Attrs["k"]; got != `a"b<c` {
		t.Fatalf("attr = %q", got)
	}
}

func TestDeleteSubtree(t *testing.T) {
	doc, err := ParseString(`<a><b><c/></b><d/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	b := doc.Root().ChildElements()[0]
	cID := b.ChildElements()[0].ID
	if err := doc.DeleteSubtree(b); err != nil {
		t.Fatal(err)
	}
	if doc.NodeByID(b.ID) != nil || doc.NodeByID(cID) != nil {
		t.Fatalf("deleted nodes still indexed")
	}
	if got := doc.String(); got != `<a><d/></a>` {
		t.Fatalf("after delete: %s", got)
	}
	// Deleting again must fail.
	if err := doc.DeleteSubtree(b); err == nil {
		t.Fatalf("double delete succeeded")
	}
}

func TestDeleteRootRejected(t *testing.T) {
	doc := NewDocument("a")
	if err := doc.DeleteSubtree(doc.Root()); err == nil {
		t.Fatal("expected error deleting root")
	}
}

func TestInsertSubtree(t *testing.T) {
	doc := NewDocument("a")
	tmpl := NewSubtree("t")
	m := AddTemplateChild(tmpl, "m")
	AddTemplateText(m, "v")
	n, err := doc.InsertSubtree(doc.Root(), tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if n.Parent() != doc.Root() {
		t.Fatalf("inserted parent wrong")
	}
	if doc.String() != `<a><t><m>v</m></t></a>` {
		t.Fatalf("after insert: %s", doc.String())
	}
	// Fresh ids assigned.
	if n.ID == 0 || n.ChildElements()[0].ID == 0 {
		t.Fatalf("inserted nodes missing ids")
	}
	if !doc.Contains(n) {
		t.Fatalf("inserted node not indexed")
	}
}

func TestInsertUnderTextRejected(t *testing.T) {
	doc := NewDocument("a")
	txt := doc.AddText(doc.Root(), "v")
	if _, err := doc.InsertSubtree(txt, NewSubtree("x")); err == nil {
		t.Fatal("expected error inserting under text node")
	}
}

func TestCloneIndependence(t *testing.T) {
	doc, err := ParseString(`<a><b>x</b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	doc.Root().Sign = SignPlus
	cp := doc.Clone()
	if cp.String() != doc.String() {
		t.Fatalf("clone differs")
	}
	if cp.Root().Sign != SignPlus {
		t.Fatalf("clone lost sign")
	}
	// Mutating the clone must not affect the original.
	cp.AddElement(cp.Root(), "new")
	if strings.Contains(doc.String(), "new") {
		t.Fatalf("clone mutation leaked into original")
	}
	// Node ids preserved.
	if cp.Root().ID != doc.Root().ID {
		t.Fatalf("clone changed ids")
	}
}

func TestClearSignsAndCounts(t *testing.T) {
	doc, _ := ParseString(`<a><b/><c/><d/></a>`)
	els := doc.Elements()
	els[1].Sign = SignPlus
	els[2].Sign = SignMinus
	p, m, n := doc.SignCounts()
	if p != 1 || m != 1 || n != 2 {
		t.Fatalf("counts = %d,%d,%d", p, m, n)
	}
	doc.ClearSigns()
	p, m, n = doc.SignCounts()
	if p != 0 || m != 0 || n != 4 {
		t.Fatalf("after clear: %d,%d,%d", p, m, n)
	}
}

func TestTextContentAggregates(t *testing.T) {
	doc, _ := ParseString(`<a><b>x</b><c><d>y</d></c></a>`)
	if got := doc.Root().TextContent(); got != "xy" {
		t.Fatalf("TextContent = %q", got)
	}
}

func TestNodePathAndDepth(t *testing.T) {
	doc, _ := ParseString(`<a><b><c/></b></a>`)
	c := doc.Root().ChildElements()[0].ChildElements()[0]
	if c.Path() != "/a/b/c" {
		t.Fatalf("path = %q", c.Path())
	}
	if c.Depth() != 2 {
		t.Fatalf("depth = %d", c.Depth())
	}
}

func TestElementsByLabel(t *testing.T) {
	doc, _ := ParseString(`<a><b/><c><b/></c></a>`)
	bs := doc.ElementsByLabel("b")
	if len(bs) != 2 {
		t.Fatalf("found %d b elements", len(bs))
	}
}

func TestSetAttrReservedSign(t *testing.T) {
	doc := NewDocument("a")
	if err := doc.SetAttr(doc.Root(), SignAttr, "+"); err == nil {
		t.Fatal("expected reserved-attribute error")
	}
}

func TestParseSignValues(t *testing.T) {
	for in, want := range map[string]Sign{"+": SignPlus, "-": SignMinus, "": SignNone} {
		got, err := ParseSign(in)
		if err != nil || got != want {
			t.Errorf("ParseSign(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSign("x"); err == nil {
		t.Error("ParseSign(x) should fail")
	}
}

// randomDoc builds a random tree with the given rng; used by the round-trip
// property test.
func randomDoc(r *rand.Rand) *Document {
	labels := []string{"a", "b", "c", "d", "e"}
	d := NewDocument(labels[r.Intn(len(labels))])
	nodes := []*Node{d.Root()}
	n := 1 + r.Intn(40)
	for i := 0; i < n; i++ {
		p := nodes[r.Intn(len(nodes))]
		if r.Intn(5) == 0 {
			d.AddText(p, "v"+labels[r.Intn(len(labels))])
			continue
		}
		c := d.AddElement(p, labels[r.Intn(len(labels))])
		nodes = append(nodes, c)
	}
	return d
}

func TestQuickSerializeParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r)
		out := d.String()
		re, err := ParseString(out)
		if err != nil {
			t.Logf("reparse error: %v for %q", err, out)
			return false
		}
		return re.String() == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeleteShrinksSize(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r)
		els := d.Elements()
		if len(els) < 2 {
			return true
		}
		victim := els[1+r.Intn(len(els)-1)]
		before := d.Size()
		sub := 0
		victim.walk(func(*Node) bool { sub++; return true })
		if err := d.DeleteSubtree(victim); err != nil {
			return false
		}
		return d.Size() == before-sub
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
