package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// SignAttr is the reserved attribute name under which accessibility
// annotations are serialized, following Section 5.2 of the paper ("we choose
// to store accessibility annotations for XML elements in the form of the XML
// attribute sign").
const SignAttr = "sign"

// ParseStd reads an XML document using the stdlib encoding/xml tokenizer.
// It accepts the same documents as Parse and builds identical trees (the
// test suite checks this differentially) but runs roughly an order of
// magnitude slower; Parse's hand-written scanner is the production path.
// ParseStd is kept as the reference implementation.
func ParseStd(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	dec.Strict = true
	var doc *Document
	var cur *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			var n *Node
			if doc == nil {
				doc = NewDocument(t.Name.Local)
				n = doc.root
			} else {
				if cur == nil {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements")
				}
				n = doc.AddElement(cur, t.Name.Local)
			}
			for _, a := range t.Attr {
				if a.Name.Local == SignAttr {
					s, err := ParseSign(a.Value)
					if err != nil {
						return nil, err
					}
					n.Sign = s
					continue
				}
				if n.Attrs == nil {
					n.Attrs = make(map[string]string)
				}
				n.Attrs[a.Name.Local] = a.Value
			}
			cur = n
		case xml.EndElement:
			if cur == nil {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %s", t.Name.Local)
			}
			cur = cur.parent
		case xml.CharData:
			if cur == nil {
				continue // whitespace outside the root
			}
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			doc.AddText(cur, strings.TrimSpace(s))
		}
	}
	if doc == nil {
		return nil, fmt.Errorf("xmltree: parse: empty document")
	}
	if cur != nil {
		return nil, fmt.Errorf("xmltree: parse: unexpected end of input inside element %s", cur.Label)
	}
	return doc, nil
}

// WriteOptions controls serialization.
type WriteOptions struct {
	// Indent, when non-empty, pretty-prints with the given unit of
	// indentation; when empty the output is compact.
	Indent string
	// Signs controls whether accessibility annotations are serialized as
	// sign attributes.
	Signs bool
}

// Write serializes the document as XML text.
func (d *Document) Write(w io.Writer, opts WriteOptions) error {
	bw := &errWriter{w: w}
	writeNode(bw, d.root, opts, 0)
	if opts.Indent != "" {
		bw.WriteString("\n")
	}
	return bw.err
}

// String serializes the document compactly (without signs); ideal for tests
// and error messages.
func (d *Document) String() string {
	var b strings.Builder
	_ = d.Write(&b, WriteOptions{})
	return b.String()
}

// StringAnnotated serializes the document with indentation and sign
// attributes, mirroring the annotated document listings of the paper.
func (d *Document) StringAnnotated() string {
	var b strings.Builder
	_ = d.Write(&b, WriteOptions{Indent: "  ", Signs: true})
	return b.String()
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) WriteString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func writeNode(w *errWriter, n *Node, opts WriteOptions, depth int) {
	if n == nil {
		return
	}
	indent := func(d int) {
		if opts.Indent == "" {
			return
		}
		w.WriteString(strings.Repeat(opts.Indent, d))
	}
	if n.Kind == Text {
		indent(depth)
		w.WriteString(escapeText(n.Value))
		if opts.Indent != "" {
			w.WriteString("\n")
		}
		return
	}
	indent(depth)
	w.WriteString("<")
	w.WriteString(n.Label)
	// Deterministic attribute order: sign first, then sorted keys.
	if opts.Signs && n.Sign != SignNone {
		w.WriteString(` ` + SignAttr + `="` + n.Sign.String() + `"`)
	}
	for _, k := range sortedKeys(n.Attrs) {
		w.WriteString(" " + k + `="` + escapeAttr(n.Attrs[k]) + `"`)
	}
	if len(n.children) == 0 {
		w.WriteString("/>")
		if opts.Indent != "" {
			w.WriteString("\n")
		}
		return
	}
	w.WriteString(">")
	// Compact mode: inline everything. Indented mode: if the only child is a
	// single text node, keep it inline for readability.
	if opts.Indent != "" && !(len(n.children) == 1 && n.children[0].Kind == Text) {
		w.WriteString("\n")
		for _, c := range n.children {
			writeNode(w, c, opts, depth+1)
		}
		indent(depth)
	} else {
		for _, c := range n.children {
			inline := opts
			inline.Indent = ""
			writeNode(w, c, inline, 0)
		}
	}
	w.WriteString("</" + n.Label + ">")
	if opts.Indent != "" {
		w.WriteString("\n")
	}
}

func sortedKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

var attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

func escapeText(s string) string { return textEscaper.Replace(s) }

func escapeAttr(s string) string { return attrEscaper.Replace(s) }
