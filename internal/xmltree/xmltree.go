// Package xmltree implements the XML document model used throughout the
// reproduction: rooted, unordered, node-labeled trees T = (V, E, R, λ) as
// defined in Section 2.1 of the paper. Labels are drawn from a set of element
// names Σ and a data domain D; element nodes carry labels from Σ and text
// nodes carry values from D.
//
// The package provides parsing from and serialization to standard XML text,
// stable node identifiers ("universal identifiers" in the paper's
// terminology, also used as primary keys by the shredder), subtree updates
// (insert and delete), and accessibility annotations stored as a `sign`
// attribute — the representation the paper uses for the native XML store.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates element nodes (labels in Σ) from text nodes (values in
// the data domain D).
type Kind uint8

const (
	// Element is an XML element node; its Label is an element name.
	Element Kind = iota
	// Text is a character-data node; its Value is the datum.
	Text
)

// Sign is an accessibility annotation attached to a node. The paper writes
// these as "+" (accessible) and "−" (inaccessible); a node may also carry no
// annotation at all (SignNone), which the enforcement layer interprets
// according to the policy's default semantics.
type Sign uint8

const (
	// SignNone means the node carries no annotation.
	SignNone Sign = iota
	// SignPlus marks a node accessible.
	SignPlus
	// SignMinus marks a node inaccessible.
	SignMinus
)

// String renders the sign the way the paper prints it.
func (s Sign) String() string {
	switch s {
	case SignPlus:
		return "+"
	case SignMinus:
		return "-"
	default:
		return ""
	}
}

// ParseSign converts the textual form of a sign annotation back to a Sign.
func ParseSign(s string) (Sign, error) {
	switch s {
	case "+":
		return SignPlus, nil
	case "-", "−": // accept the typographic minus the paper prints
		return SignMinus, nil
	case "":
		return SignNone, nil
	default:
		return SignNone, fmt.Errorf("xmltree: invalid sign %q", s)
	}
}

// Node is a single node of an XML tree. Element nodes have a Label and may
// have children and attributes; text nodes have a Value and no children.
type Node struct {
	// ID is the node's universal identifier: unique within the owning
	// Document, assigned in document order at build time. The shredder uses
	// it as the relational primary key, so the relational and native
	// representations of the same document share node identities.
	ID int64
	// Kind says whether this is an element or a text node.
	Kind Kind
	// Label is the element name (empty for text nodes).
	Label string
	// Value is the character data (empty for element nodes).
	Value string
	// Sign is the node's accessibility annotation, if any.
	Sign Sign
	// Attrs holds XML attributes other than the reserved sign attribute.
	Attrs map[string]string

	parent   *Node
	children []*Node
}

// Parent returns the node's parent, or nil for the root.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the node's children. The returned slice is owned by the
// node; callers must not mutate it.
func (n *Node) Children() []*Node { return n.children }

// IsElement reports whether the node is an element node.
func (n *Node) IsElement() bool { return n.Kind == Element }

// IsText reports whether the node is a text node.
func (n *Node) IsText() bool { return n.Kind == Text }

// TextContent returns the concatenation of all text-node values in the
// subtree rooted at n, in document order. For a text node it is the value
// itself. This implements the notion of the "value" of an element used by
// XPath value comparisons such as med = "celecoxib".
func (n *Node) TextContent() string {
	if n.Kind == Text {
		return n.Value
	}
	var b strings.Builder
	n.walk(func(m *Node) bool {
		if m.Kind == Text {
			b.WriteString(m.Value)
		}
		return true
	})
	return b.String()
}

// ChildElements returns the element children of n.
func (n *Node) ChildElements() []*Node {
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		if c.Kind == Element {
			out = append(out, c)
		}
	}
	return out
}

// Walk visits n and its descendants in document order; the visitor returns
// false to prune the subtree below the visited node.
func (n *Node) Walk(visit func(*Node) bool) { n.walk(visit) }

// walk visits n and its descendants in document order; the visitor returns
// false to prune the subtree below the visited node.
func (n *Node) walk(visit func(*Node) bool) {
	if !visit(n) {
		return
	}
	for _, c := range n.children {
		c.walk(visit)
	}
}

// Depth returns the number of edges from the root to n.
func (n *Node) Depth() int {
	d := 0
	for p := n.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// Path returns a human-readable absolute location of the node, e.g.
// /site/people/person, useful in error messages and debug output.
func (n *Node) Path() string {
	if n == nil {
		return ""
	}
	var labels []string
	for m := n; m != nil; m = m.parent {
		switch m.Kind {
		case Element:
			labels = append(labels, m.Label)
		case Text:
			labels = append(labels, "text()")
		}
	}
	var b strings.Builder
	for i := len(labels) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(labels[i])
	}
	return b.String()
}

// Document is an XML tree together with the bookkeeping the access-control
// system needs: an id→node index and the universal-identifier counter used
// when new nodes are inserted.
type Document struct {
	root   *Node
	byID   map[int64]*Node
	nextID int64
}

// NewDocument creates a document with a fresh root element of the given
// label. The root receives id 1, matching the paper's Table 4 where the
// topmost shredded tuple has id 1.
func NewDocument(rootLabel string) *Document {
	d := &Document{byID: make(map[int64]*Node), nextID: 1}
	d.root = &Node{ID: d.allocID(), Kind: Element, Label: rootLabel}
	d.byID[d.root.ID] = d.root
	return d
}

func (d *Document) allocID() int64 {
	id := d.nextID
	d.nextID++
	return id
}

// Root returns the document's root element.
func (d *Document) Root() *Node { return d.root }

// NodeByID returns the node with the given universal identifier, or nil if
// no such node exists (e.g. it was deleted).
func (d *Document) NodeByID(id int64) *Node { return d.byID[id] }

// Size returns the number of nodes currently in the document (elements and
// text nodes).
func (d *Document) Size() int { return len(d.byID) }

// ElementCount returns the number of element nodes in the document.
func (d *Document) ElementCount() int {
	n := 0
	for _, m := range d.byID {
		if m.Kind == Element {
			n++
		}
	}
	return n
}

// AddElement creates a new element node labeled label as a child of parent
// and returns it. parent must belong to this document.
func (d *Document) AddElement(parent *Node, label string) *Node {
	n := &Node{ID: d.allocID(), Kind: Element, Label: label, parent: parent}
	parent.children = append(parent.children, n)
	d.byID[n.ID] = n
	return n
}

// AddText creates a new text node with the given value as a child of parent
// and returns it.
func (d *Document) AddText(parent *Node, value string) *Node {
	n := &Node{ID: d.allocID(), Kind: Text, Value: value, parent: parent}
	parent.children = append(parent.children, n)
	d.byID[n.ID] = n
	return n
}

// SetAttr sets an ordinary XML attribute on an element node. The reserved
// sign attribute must be manipulated through the Sign field instead.
func (d *Document) SetAttr(n *Node, key, value string) error {
	if key == SignAttr {
		return fmt.Errorf("xmltree: attribute %q is reserved for accessibility annotations", SignAttr)
	}
	if n.Kind != Element {
		return fmt.Errorf("xmltree: cannot set attribute on non-element node %d", n.ID)
	}
	if n.Attrs == nil {
		n.Attrs = make(map[string]string)
	}
	n.Attrs[key] = value
	return nil
}

// Walk visits every node of the document in document order. The visitor
// returns false to prune the subtree below the visited node.
func (d *Document) Walk(visit func(*Node) bool) {
	if d.root != nil {
		d.root.walk(visit)
	}
}

// Elements returns all element nodes in document order.
func (d *Document) Elements() []*Node {
	var out []*Node
	d.Walk(func(n *Node) bool {
		if n.Kind == Element {
			out = append(out, n)
		}
		return true
	})
	return out
}

// ElementsByLabel returns all element nodes with the given label, in
// document order.
func (d *Document) ElementsByLabel(label string) []*Node {
	var out []*Node
	d.Walk(func(n *Node) bool {
		if n.Kind == Element && n.Label == label {
			out = append(out, n)
		}
		return true
	})
	return out
}

// Contains reports whether n belongs to this document (i.e. is reachable
// from the root and registered in the id index).
func (d *Document) Contains(n *Node) bool {
	if n == nil {
		return false
	}
	return d.byID[n.ID] == n
}

// DeleteSubtree removes the subtree rooted at n from the document. Deleting
// the root is rejected: the model requires a rooted tree at all times. This
// is the update operation the paper's re-annotation experiments use (delete
// updates specified by an XPath expression).
func (d *Document) DeleteSubtree(n *Node) error {
	if n == d.root {
		return fmt.Errorf("xmltree: cannot delete the document root")
	}
	if !d.Contains(n) {
		return fmt.Errorf("xmltree: node %d is not part of this document", n.ID)
	}
	p := n.parent
	idx := -1
	for i, c := range p.children {
		if c == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("xmltree: node %d not found among its parent's children", n.ID)
	}
	p.children = append(p.children[:idx], p.children[idx+1:]...)
	n.parent = nil
	n.walk(func(m *Node) bool {
		delete(d.byID, m.ID)
		return true
	})
	return nil
}

// InsertSubtree grafts the tree described by tmpl (a detached template built
// with NewSubtree/AddTemplateChild or cloned from another document) under
// parent, assigning fresh universal identifiers to every inserted node. It
// returns the inserted copy's root. This is the insert update of the paper's
// future-work section, which the re-annotation machinery here supports.
func (d *Document) InsertSubtree(parent *Node, tmpl *Node) (*Node, error) {
	if !d.Contains(parent) {
		return nil, fmt.Errorf("xmltree: parent node is not part of this document")
	}
	if parent.Kind != Element {
		return nil, fmt.Errorf("xmltree: cannot insert under a text node")
	}
	var clone func(src *Node, dst *Node) *Node
	clone = func(src *Node, dstParent *Node) *Node {
		n := &Node{
			ID:     d.allocID(),
			Kind:   src.Kind,
			Label:  src.Label,
			Value:  src.Value,
			Sign:   src.Sign,
			parent: dstParent,
		}
		if len(src.Attrs) > 0 {
			n.Attrs = make(map[string]string, len(src.Attrs))
			for k, v := range src.Attrs {
				n.Attrs[k] = v
			}
		}
		d.byID[n.ID] = n
		if dstParent != nil {
			dstParent.children = append(dstParent.children, n)
		}
		for _, c := range src.children {
			clone(c, n)
		}
		return n
	}
	return clone(tmpl, parent), nil
}

// SetNodeID reassigns a node's universal identifier, keeping the id index
// consistent and bumping the allocation counter past the new id. It is used
// when reconstructing a document from an external representation (e.g. the
// relational store) that recorded the original identifiers.
func (d *Document) SetNodeID(n *Node, id int64) error {
	if !d.Contains(n) {
		return fmt.Errorf("xmltree: node is not part of this document")
	}
	if id <= 0 {
		return fmt.Errorf("xmltree: invalid node id %d", id)
	}
	if other, taken := d.byID[id]; taken && other != n {
		return fmt.Errorf("xmltree: node id %d is already in use", id)
	}
	delete(d.byID, n.ID)
	n.ID = id
	d.byID[id] = n
	if id >= d.nextID {
		d.nextID = id + 1
	}
	return nil
}

// Clone produces a deep copy of the document, preserving node ids and signs.
// The copy is fully independent of the original.
func (d *Document) Clone() *Document {
	out := &Document{byID: make(map[int64]*Node, len(d.byID)), nextID: d.nextID}
	var clone func(src *Node, parent *Node) *Node
	clone = func(src *Node, parent *Node) *Node {
		n := &Node{
			ID:     src.ID,
			Kind:   src.Kind,
			Label:  src.Label,
			Value:  src.Value,
			Sign:   src.Sign,
			parent: parent,
		}
		if len(src.Attrs) > 0 {
			n.Attrs = make(map[string]string, len(src.Attrs))
			for k, v := range src.Attrs {
				n.Attrs[k] = v
			}
		}
		out.byID[n.ID] = n
		if parent != nil {
			parent.children = append(parent.children, n)
		}
		for _, c := range src.children {
			clone(c, n)
		}
		return n
	}
	if d.root != nil {
		out.root = clone(d.root, nil)
	}
	return out
}

// ClearSigns removes every accessibility annotation from the document,
// returning it to the unannotated state (the paper's "delete all annotations
// and annotate from scratch" baseline starts here).
func (d *Document) ClearSigns() {
	d.Walk(func(n *Node) bool {
		n.Sign = SignNone
		return true
	})
}

// SignCounts returns how many element nodes carry each annotation; useful
// for the coverage measurements of the evaluation (the paper evaluated
// actual coverage percentages after each annotation).
func (d *Document) SignCounts() (plus, minus, none int) {
	d.Walk(func(n *Node) bool {
		if n.Kind != Element {
			return true
		}
		switch n.Sign {
		case SignPlus:
			plus++
		case SignMinus:
			minus++
		default:
			none++
		}
		return true
	})
	return plus, minus, none
}

// NewSubtree builds a detached template element (not belonging to any
// document, id 0) for use with InsertSubtree.
func NewSubtree(label string) *Node {
	return &Node{Kind: Element, Label: label}
}

// AddTemplateChild appends a detached child element to a template node and
// returns the child.
func AddTemplateChild(parent *Node, label string) *Node {
	n := &Node{Kind: Element, Label: label, parent: parent}
	parent.children = append(parent.children, n)
	return n
}

// AddTemplateText appends a detached text child to a template node and
// returns it.
func AddTemplateText(parent *Node, value string) *Node {
	n := &Node{Kind: Text, Value: value, parent: parent}
	parent.children = append(parent.children, n)
	return n
}

// SortedIDs returns the ids of the given nodes in ascending order; handy for
// deterministic test output.
func SortedIDs(nodes []*Node) []int64 {
	ids := make([]int64, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
