package xmltree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mutateXML(r *rand.Rand, s string) string {
	b := []byte(s)
	n := 1 + r.Intn(5)
	for i := 0; i < n && len(b) > 0; i++ {
		switch r.Intn(3) {
		case 0:
			b[r.Intn(len(b))] = byte(r.Intn(128))
		case 1:
			pos := r.Intn(len(b) + 1)
			b = append(b[:pos], append([]byte{byte(r.Intn(128))}, b[pos:]...)...)
		case 2:
			pos := r.Intn(len(b))
			b = append(b[:pos], b[pos+1:]...)
		}
	}
	return string(b)
}

// TestQuickXMLParseNeverPanics: the fast scanner never panics on arbitrary
// bytes, and anything it accepts serializes and reparses to the same tree.
func TestQuickXMLParseNeverPanics(t *testing.T) {
	seeds := []string{
		`<a k="v"><b>x &amp; y</b><c/><!-- c --><![CDATA[z]]></a>`,
		`<?xml version="1.0"?><!DOCTYPE a [ <!ELEMENT a ANY> ]><a sign="+">t</a>`,
		`<a><b><c><d/></c></b></a>`,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var in string
		if r.Intn(3) == 0 {
			raw := make([]byte, r.Intn(80))
			for i := range raw {
				raw[i] = byte(r.Intn(256))
			}
			in = string(raw)
		} else {
			in = mutateXML(r, seeds[r.Intn(len(seeds))])
		}
		doc, err := ParseString(in)
		if err != nil {
			return true
		}
		re, err := ParseString(doc.String())
		return err == nil && re.String() == doc.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
