// Package xmlac is a library for controlling access to XML documents
// stored in native XML and relational databases, reproducing the system of
//
//	L. Koromilas, G. Chinis, I. Fundulaki, S. Ioannidis:
//	"Controlling Access to XML Documents over XML Native and Relational
//	Databases", Secure Data Management (SDM @ VLDB), LNCS 5776, 2009.
//
// The library follows the paper's materialized approach: a document is
// stored together with per-node accessibility annotations ('+'/'−' signs)
// computed from a rule-based access-control policy, and queries are
// answered all-or-nothing against the annotated store. It implements the
// paper's four components — the policy optimizer (redundancy elimination by
// XPath containment), the annotator (annotation queries per the policy
// semantics), the reannotator (dependency graph + schema-aware rule
// expansion + the Trigger algorithm, so document updates re-annotate only
// the affected region), and the requester — over three interchangeable
// backends: an in-memory native XML store and a relational store in row- or
// column-oriented layout, fed by ShreX-style shredding with XPath-to-SQL
// translation.
//
// # Quick start
//
//	schema, _ := xmlac.ParseDTD(dtdText)
//	pol, _ := xmlac.ParsePolicy(policyText)
//	sys, _ := xmlac.New(xmlac.Config{Schema: schema, Policy: pol,
//	    Backend: xmlac.BackendNative, Optimize: true})
//	doc, _ := xmlac.ParseXML(strings.NewReader(xmlText))
//	_ = sys.Load(doc)
//	_, _ = sys.Annotate()
//	res, err := sys.Request(xmlac.MustParseXPath("//patient/name"))
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory and EXPERIMENTS.md for the reproduced evaluation.
package xmlac

import (
	"context"
	"io"

	"xmlac/internal/audit"
	"xmlac/internal/core"
	"xmlac/internal/dtd"
	"xmlac/internal/obs"
	"xmlac/internal/observatory"
	"xmlac/internal/pattern"
	"xmlac/internal/policy"
	"xmlac/internal/xmark"
	"xmlac/internal/xmltree"
	"xmlac/internal/xpath"
)

// Version identifies this release of the library and its commands.
const Version = "0.8.0"

// Core model types, re-exported for the public API. See the internal
// packages for full method documentation.
type (
	// Document is an XML document: a rooted unordered labeled tree with
	// stable universal node identifiers and optional sign annotations.
	Document = xmltree.Document
	// Node is a single node of a Document.
	Node = xmltree.Node
	// Sign is a node's accessibility annotation ('+', '−', or none).
	Sign = xmltree.Sign
	// Schema is a parsed DTD.
	Schema = dtd.Schema
	// Policy is an access-control policy P = (ds, cr, A, D).
	Policy = policy.Policy
	// Rule is one access-control rule (resource, effect).
	Rule = policy.Rule
	// Effect is a rule effect / default semantics / conflict resolution.
	Effect = policy.Effect
	// Action is the operation a rule governs (read or write).
	Action = policy.Action
	// Path is a parsed XPath expression of the paper's fragment.
	Path = xpath.Path
	// System is an assembled access-control system over one backend.
	System = core.System
	// Config assembles a System.
	Config = core.Config
	// Backend selects the annotation store of a System.
	Backend = core.Backend
	// AnnotateStats reports what an annotation run did.
	AnnotateStats = core.AnnotateStats
	// UpdateReport describes one update + re-annotation round trip.
	UpdateReport = core.UpdateReport
	// RequestResult is a granted request's answer.
	RequestResult = core.RequestResult
	// ViewMode selects the security-view export behavior (prune/promote).
	ViewMode = core.ViewMode
	// MultiUser serves per-requester policies over one shared document,
	// with compressed per-user accessibility maps.
	MultiUser = core.MultiUser
	// MultiUpdateReport describes a shared update across all users.
	MultiUpdateReport = core.MultiUpdateReport
	// MultiUserStats summarizes the policy-cohort compression of a
	// MultiUser: population, distinct cohorts, dedup ratio and the
	// per-cohort breakdown.
	MultiUserStats = core.MultiUserStats
	// CohortInfo is one cohort's entry in MultiUserStats.
	CohortInfo = core.CohortInfo
	// EnforceMode selects the enforcement strategy of a System or a
	// single request: materialized signs, query rewriting, or the
	// planner's automatic choice.
	EnforceMode = core.EnforceMode
	// EnforcePlan is the enforcement planner's verdict for one System:
	// the resolved mode and why, plus the schema and backend facts
	// (recursion, raw-query capability) it rested on.
	EnforcePlan = core.EnforcePlan
	// EnforcementStats is the planner-decision coverage block: static
	// classifications and per-mode decision counts.
	EnforcementStats = core.EnforcementStats
	// StaticVerdict is the static enforceability checker's answer for one
	// query (grant, deny or unknown).
	StaticVerdict = pattern.StaticVerdict
	// Rewriter is one policy compiled for rewriting enforcement; reach a
	// System's via System.Rewriter to render composed safe queries.
	Rewriter = xpath.Rewriter
	// XMarkOptions scales the bundled XMark-like document generator.
	XMarkOptions = xmark.Options
	// Tracer creates trace spans; attach one via Config.Tracer to see a
	// per-phase breakdown of annotation, re-annotation and requests.
	Tracer = obs.Tracer
	// Span is one timed region of a trace. Every span carries a TraceID
	// shared by its whole tree and a unique SpanID.
	Span = obs.Span
	// TraceID identifies one span tree; it renders as 16 hex digits and
	// is stamped on the tree's audit events for correlation.
	TraceID = obs.TraceID
	// SpanID identifies one span within its trace.
	SpanID = obs.SpanID
	// TraceSink receives finished root spans from a Tracer.
	TraceSink = obs.Sink
	// MetricsRegistry holds named counters, gauges and histograms; attach
	// one via Config.Metrics to collect backend execution metrics.
	MetricsRegistry = obs.Registry
	// Phases is the flat per-stage time breakdown carried on AnnotateStats
	// and UpdateReport, recorded whether or not a tracer is attached.
	Phases = obs.Phases
	// TraceCollector is a TraceSink retaining the most recent root spans
	// in a bounded ring — the store behind a server's /traces endpoint.
	TraceCollector = obs.Collector
	// AuditLog records decision events in a bounded ring, optionally
	// mirrored to a JSONL writer; attach one via Config.Audit.
	AuditLog = audit.Log
	// AuditEvent is one recorded decision: a request, a write-access
	// check, or an annotation/re-annotation run.
	AuditEvent = audit.Event
	// AuditOutcome classifies an AuditEvent (grant, deny, error, ok).
	AuditOutcome = audit.Outcome
	// WhyDecision explains one node's accessibility: the deciding rule,
	// the co-matching rules, and the rules the conflict resolution
	// overrode. Returned by System.Why and System.WhyNode.
	WhyDecision = core.WhyDecision
	// RuleRef names one policy rule inside a WhyDecision.
	RuleRef = core.RuleRef
	// AuditRotatingFile is a JSONL audit writer with size-based rotation
	// (path -> path.1 -> path.2, bounded file count); open one with
	// OpenRotatingAuditFile and pass it to AuditLog.AttachJSONL.
	AuditRotatingFile = audit.RotatingFile
	// Observatory is the decision-analytics engine: denial forensics,
	// SLO burn-rate alerting and live decision streaming over an
	// AuditLog + MetricsRegistry pair.
	Observatory = observatory.Observatory
	// ObservatoryOptions configures NewObservatory.
	ObservatoryOptions = observatory.Options
	// CoverageReport joins a loaded policy against the annotated
	// document: per-rule fire counts, dead and always-losing rules, the
	// allow/deny node mix. Returned by System.PolicyCoverage and
	// MultiUser.CoverageByCohort.
	CoverageReport = observatory.CoverageReport
	// RuleCoverage is one rule's row in a CoverageReport.
	RuleCoverage = observatory.RuleCoverage
	// CoverageRollup condenses per-cohort CoverageReports into a
	// per-semantics allow/deny mix; build one with RollupCoverage.
	CoverageRollup = observatory.CoverageRollup
	// DenialForensics aggregates denials into tumbling time windows by
	// subject, doc, rule, backend and shard.
	DenialForensics = observatory.Forensics
	// ForensicsWindow is one window's denial report with top-K
	// dimensions and rate-of-change.
	ForensicsWindow = observatory.WindowReport
	// SLOEngine evaluates declarative objectives with multi-window
	// burn-rate state machines; reach it via Observatory.SLO.
	SLOEngine = observatory.SLOEngine
	// SLOObjective is one parsed objective (e.g. request_p99<5ms).
	SLOObjective = observatory.Objective
	// AlertState is one objective's current burn-rate state.
	AlertState = observatory.AlertState
	// AlertTransition is one ok<->firing state-machine edge.
	AlertTransition = observatory.AlertTransition
	// DecisionStream fans audit events and alert transitions out to live
	// subscribers with bounded per-subscriber queues (the SSE /stream
	// hub).
	DecisionStream = observatory.Stream
	// StreamEvent is one frame of the decision stream.
	StreamEvent = observatory.StreamEvent
	// StreamSub is one live subscription to a DecisionStream.
	StreamSub = observatory.StreamSub
)

// Audit outcomes.
const (
	// AuditGrant marks an allowed request or write check.
	AuditGrant = audit.OutcomeGrant
	// AuditDeny marks a denied request or write check.
	AuditDeny = audit.OutcomeDeny
	// AuditError marks an evaluation failure.
	AuditError = audit.OutcomeError
	// AuditOK marks a completed annotation or re-annotation run.
	AuditOK = audit.OutcomeOK
)

// View modes.
const (
	// ViewPrune drops inaccessible subtrees wholesale when exporting a
	// security view.
	ViewPrune = core.ViewPrune
	// ViewPromote splices inaccessible nodes out, promoting their
	// accessible descendants.
	ViewPromote = core.ViewPromote
)

// Enforcement modes.
const (
	// EnforceAuto lets the planner decide: signs where the materialized
	// pipeline applies, rewriting where it cannot (recursive schemas).
	EnforceAuto = core.EnforceAuto
	// EnforceSigns is the paper's materialized pipeline.
	EnforceSigns = core.EnforceSigns
	// EnforceRewrite composes the policy into each query over the
	// unannotated store: annotation-free reads, re-annotation-free writes.
	EnforceRewrite = core.EnforceRewrite
)

// Static enforceability verdicts.
const (
	// StaticUnknown means the checker could not decide from shapes alone.
	StaticUnknown = pattern.StaticUnknown
	// StaticGrant means every possible match is provably accessible.
	StaticGrant = pattern.StaticGrant
	// StaticDeny means the query is provably non-empty and every match
	// provably inaccessible — requests are refused without touching a
	// store.
	StaticDeny = pattern.StaticDeny
)

// Backends.
const (
	// BackendNative stores annotations on the XML tree itself (the paper's
	// MonetDB/XQuery configuration).
	BackendNative = core.BackendNative
	// BackendRow shreds into a row-oriented relational store (the paper's
	// PostgreSQL configuration).
	BackendRow = core.BackendRow
	// BackendColumn shreds into a column-oriented relational store (the
	// paper's MonetDB/SQL configuration).
	BackendColumn = core.BackendColumn
	// BackendVector shreds into the column-oriented store driven by the
	// vectorized batch executor (the real-MonetDB role, "monetcol").
	BackendVector = core.BackendVector
)

// Effects, actions and signs.
const (
	// Allow is the "+" effect.
	Allow = policy.Allow
	// Deny is the "−" effect.
	Deny = policy.Deny
	// ActionRead governs query access (the paper's fixed action).
	ActionRead = policy.ActionRead
	// ActionWrite governs update access (this reproduction's extension of
	// the paper's future work).
	ActionWrite = policy.ActionWrite
	// SignPlus marks a node accessible.
	SignPlus = xmltree.SignPlus
	// SignMinus marks a node inaccessible.
	SignMinus = xmltree.SignMinus
	// SignNone means a node carries no annotation (the policy default
	// applies).
	SignNone = xmltree.SignNone
)

// ErrAccessDenied is returned by System.Request when the all-or-nothing
// check fails.
var ErrAccessDenied = core.ErrAccessDenied

// ErrUpdateDenied is returned by the update operations when
// Config.EnforceWrite rejects an update under the policy's write rules.
var ErrUpdateDenied = core.ErrUpdateDenied

// New assembles an access-control system from a schema, a policy and a
// backend choice. With Config.Optimize set, redundant rules are eliminated
// first (Section 5.1 of the paper).
func New(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// ParseEnforceMode parses "auto", "signs" or "rewrite" (the -enforce
// flag values).
func ParseEnforceMode(s string) (EnforceMode, error) { return core.ParseEnforceMode(s) }

// NewTracer returns a tracer delivering finished root spans to sink.
// Use a RenderTraceSink to print span trees as they finish.
func NewTracer(sink TraceSink) *Tracer { return obs.NewTracer(sink) }

// RenderTraceSink returns a TraceSink that renders each finished span tree
// to w — the output behind the commands' -trace flag.
func RenderTraceSink(w io.Writer) TraceSink { return &obs.RenderSink{W: w} }

// NewAuditLog returns an audit log retaining the most recent capacity
// events (a package default when capacity <= 0). Attach it via
// Config.Audit; mirror events to a writer with AuditLog.AttachJSONL.
func NewAuditLog(capacity int) *AuditLog { return audit.NewLog(capacity) }

// OpenRotatingAuditFile opens a size-rotated JSONL audit file: once the
// live file would exceed maxBytes (a package default when <= 0) it is
// renamed path.1 (shifting older generations up) and a fresh file is
// opened; at most maxFiles files are kept. Pass the result to
// AuditLog.AttachJSONL and export rotations via
// AuditRotatingFile.OnRotate.
func OpenRotatingAuditFile(path string, maxBytes int64, maxFiles int) (*AuditRotatingFile, error) {
	return audit.OpenRotatingFile(path, maxBytes, maxFiles)
}

// NewObservatory assembles the analytics engine. Attach it to an audit
// log with Observatory.Attach, enable burn-rate alerting with
// Observatory.EnableSLOs, and drive it with Observatory.Run (or Tick).
func NewObservatory(opts ObservatoryOptions) *Observatory { return observatory.New(opts) }

// ParseSLOs parses the -slo flag syntax, e.g.
// `request_p99<5ms,error_rate<1%`. Supported objectives: request_p50,
// request_p95, request_p99 (duration thresholds over the request-path
// latency series) and error_rate, deny_rate (fraction or percentage of
// requests).
func ParseSLOs(spec string) ([]SLOObjective, error) { return observatory.ParseObjectives(spec) }

// RollupCoverage aggregates MultiUser.CoverageByCohort output into the
// per-semantics allow/deny mix.
func RollupCoverage(cohorts map[string]*CoverageReport) *CoverageRollup {
	return observatory.RollupCoverage(cohorts)
}

// NewTraceCollector returns a bounded trace collector retaining the most
// recent capacity root spans (a package default when capacity <= 0). Use
// NewTracer(collector) to feed it.
func NewTraceCollector(capacity int) *TraceCollector { return obs.NewCollector(capacity) }

// NewMetricsRegistry returns an empty metrics registry. It renders in the
// Prometheus text format (MetricsRegistry.WritePrometheus), as JSON
// (WriteJSON), or over HTTP (it implements http.Handler).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ContextWithSpan returns a context carrying the span, parenting every
// traced operation run under it: System.RequestCtx, System.AnnotateCtx and
// the Catalog's *Ctx fan-outs attach their spans as children of the span
// carried in their context, so one caller-rooted trace covers the whole
// operation. A nil span leaves ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return obs.ContextWithSpan(ctx, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span { return obs.FromContext(ctx) }

// ParseXML parses an XML document into the tree model.
func ParseXML(r io.Reader) (*Document, error) { return xmltree.Parse(r) }

// ParseXMLString parses an XML document from a string.
func ParseXMLString(s string) (*Document, error) { return xmltree.ParseString(s) }

// NewDocument creates a document with a fresh root element, for programmatic
// construction via Document.AddElement / Document.AddText.
func NewDocument(rootLabel string) *Document { return xmltree.NewDocument(rootLabel) }

// ParseDTD parses a Document Type Definition (bare declarations or a full
// DOCTYPE wrapper).
func ParseDTD(s string) (*Schema, error) { return dtd.Parse(s) }

// ParsePolicy parses the textual policy format:
//
//	default deny
//	conflict deny
//	rule R1 allow //patient
//	rule R3 deny //patient[treatment]
func ParsePolicy(s string) (*Policy, error) { return policy.Parse(s) }

// ParseXPath parses an expression of the paper's XPath fragment
// XP(/, //, *, []) with value comparisons.
func ParseXPath(s string) (*Path, error) { return xpath.Parse(s) }

// MustParseXPath is ParseXPath but panics on error; for expressions that
// are compile-time constants.
func MustParseXPath(s string) *Path { return xpath.MustParse(s) }

// EvalXPath evaluates an absolute expression on a document, returning the
// matched nodes in document order (no access control — this is the raw
// node-set semantics [[p]](T)).
func EvalXPath(p *Path, doc *Document) ([]*Node, error) { return xpath.Eval(p, doc) }

// Contains reports the XPath containment p ⊑ q used by the optimizer and
// the re-annotation machinery. The test is sound: a true answer guarantees
// [[p]](T) ⊆ [[q]](T) on every tree.
func Contains(p, q *Path) bool { return pattern.Contains(p, q) }

// RemoveRedundant applies the paper's Redundancy-Elimination algorithm,
// returning the reduced policy and the removed rules.
func RemoveRedundant(p *Policy) (*Policy, []Rule) { return core.RemoveRedundant(p) }

// NewMultiUser wraps one document for per-requester access control: add
// users with their own policies via MultiUser.AddUser, then serve requests
// per requester. Users with equivalent policies share one cohort (one
// accessibility map and reannotator for the whole equivalence class), and
// updates re-annotate only the cohorts whose rules trigger.
func NewMultiUser(schema *Schema, doc *Document) (*MultiUser, error) {
	return core.NewMultiUser(schema, doc)
}

// GenerateXMark produces an XMark-like auction document (the paper's
// xmlgen workload, de-recursed) of the given scale factor, deterministically
// per seed.
func GenerateXMark(opts XMarkOptions) *Document { return xmark.Generate(opts) }

// XMarkSchema returns the DTD of the generated auction documents.
func XMarkSchema() *Schema { return xmark.Schema() }
